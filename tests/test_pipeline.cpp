// ZenesisPipeline tests: Mode A segmentation, further-segment, volume mode.
#include <gtest/gtest.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

zf::SynthConfig test_config(zf::SampleType type) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 5;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

TEST(Pipeline, MakeReadyNormalizesRawU16) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  for (float v : ready.pixels()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

TEST(Pipeline, SegmentsCrystallineSliceWell) {
  // 128-px smoke check; benchmark-grade quality (256 px, 10 slices) is
  // asserted by test_integration and bench/table3.
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  EXPECT_FALSE(r.grounding.boxes.empty());
  EXPECT_GT(zi::mask_iou(r.mask, s.ground_truth), 0.4);
}

TEST(Pipeline, SegmentsAmorphousSliceWell) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_GT(zi::mask_iou(r.mask, s.ground_truth), 0.5);
}

TEST(Pipeline, EmptyPromptGivesEmptyResult) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(zi::AnyImage(s.raw), "");
  EXPECT_TRUE(r.grounding.boxes.empty());
  EXPECT_EQ(zi::mask_area(r.mask), 0);
  EXPECT_TRUE(r.primary_box.empty());
}

TEST(Pipeline, SegmentWithBoxBypassesGrounding) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zc::SliceResult r = pipe.segment_with_box(ready, {10, 10, 100, 60});
  EXPECT_EQ(r.primary_box, (zi::Box{10, 10, 100, 60}));
  EXPECT_EQ(r.box_masks.size(), 1u);
}

TEST(Pipeline, MaxBoxesCapRespected) {
  zc::PipelineConfig cfg;
  cfg.max_boxes = 1;
  zc::ZenesisPipeline pipe(cfg);
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_LE(r.box_masks.size(), 1u);
}

TEST(Pipeline, VolumeModeProducesPerSliceResults) {
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  zc::ZenesisPipeline pipe;
  const zc::VolumeResult r = pipe.segment_volume(zc::VolumeRequest::view(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline)));
  EXPECT_EQ(r.slices.size(), 5u);
  EXPECT_EQ(r.raw_boxes.size(), 5u);
  EXPECT_EQ(r.refined_boxes.size(), 5u);
  EXPECT_EQ(r.masks().size(), 5u);
}

TEST(Pipeline, HeuristicRefineCanBeDisabled) {
  auto cfg = zc::PipelineConfig{};
  cfg.enable_heuristic_refine = false;
  zc::ZenesisPipeline pipe(cfg);
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  const zc::VolumeResult r = pipe.segment_volume(zc::VolumeRequest::view(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline)));
  EXPECT_EQ(r.replaced_count, 0);
  EXPECT_EQ(r.raw_boxes, r.refined_boxes);
}

TEST(Pipeline, FurtherSegmentStaysInsideRoi) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult parent = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const zi::Box roi{8, 8, 64, 48};
  const zc::SliceResult child = pipe.further_segment(
      parent, roi, zf::default_prompt(zf::SampleType::kCrystalline));
  const zi::Box bounds = zi::mask_bounds(child.mask);
  if (!bounds.empty()) {
    EXPECT_GE(bounds.x, roi.x);
    EXPECT_GE(bounds.y, roi.y);
    EXPECT_LE(bounds.right(), roi.right());
    EXPECT_LE(bounds.bottom(), roi.bottom());
  }
  // Child boxes are reported in parent coordinates.
  for (const auto& b : child.grounding.boxes) {
    EXPECT_GE(b.box.x, roi.x);
    EXPECT_GE(b.box.y, roi.y);
  }
}

TEST(Pipeline, FurtherSegmentEmptyRoiIsEmpty) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult parent = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const zc::SliceResult child =
      pipe.further_segment(parent, {200, 200, 10, 10}, "bright catalyst");
  EXPECT_EQ(zi::mask_area(child.mask), 0);
}

TEST(Baselines, OtsuReturnsMask) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Mask m = zc::baseline_otsu(ready);
  EXPECT_EQ(m.width(), 128);
  EXPECT_GT(zi::mask_area(m), 0);
}

TEST(Baselines, SamOnlyReturnsMask) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Mask m = zc::baseline_sam_only(pipe.sam(), ready);
  EXPECT_EQ(m.width(), 128);
}

TEST(PipelineConfig, DefaultConfigIsValid) {
  EXPECT_TRUE(zc::PipelineConfig{}.validate().empty());
}

TEST(PipelineConfig, ValidateCollectsEveryIssue) {
  zc::PipelineConfig cfg;
  cfg.max_boxes = 0;
  cfg.heuristic.window = 0;
  cfg.grounding.box_threshold = -0.1f;
  cfg.feature_cache.enabled = true;
  cfg.feature_cache.capacity = 0;
  const auto issues = cfg.validate();
  EXPECT_EQ(issues.size(), 4u);
  EXPECT_THROW(zc::ZenesisPipeline{cfg}, std::invalid_argument);
}

TEST(PipelineConfig, ConstructorMessageNamesTheKnob) {
  zc::PipelineConfig cfg;
  cfg.max_boxes = -3;
  try {
    zc::ZenesisPipeline pipe(cfg);
    FAIL() << "construction must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_boxes"), std::string::npos);
  }
}

TEST(PipelineConfig, DisabledCacheMayHaveZeroCapacity) {
  zc::PipelineConfig cfg;
  cfg.feature_cache.enabled = false;
  cfg.feature_cache.capacity = 0;
  EXPECT_TRUE(cfg.validate().empty());
  const zc::ZenesisPipeline pipe(cfg);  // must not throw
  EXPECT_EQ(pipe.cache_stats().hits, 0u);
}

TEST(BoxPromptOptions, DefaultMatchesPlainBoxPath) {
  // segment_with_box(ready, box) — now routed through the options
  // overload's defaults — must reproduce the old pure-SAM two-argument
  // overload exactly.
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Box box{10, 10, 100, 60};
  const zc::SliceResult plain = pipe.segment_with_box(ready, box);
  const zc::SliceResult explicit_opts =
      pipe.segment_with_box(ready, box, zc::BoxPromptOptions{});
  ASSERT_EQ(plain.mask.pixels().size(), explicit_opts.mask.pixels().size());
  for (std::size_t i = 0; i < plain.mask.pixels().size(); ++i) {
    ASSERT_EQ(plain.mask.pixels()[i], explicit_opts.mask.pixels()[i]);
  }
  EXPECT_FALSE(plain.grounding.has_direction);
}

TEST(BoxPromptOptions, SamScoreRankingIgnoresPrompt) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Box box{10, 10, 100, 60};
  zc::BoxPromptOptions opts;
  opts.prompt = zf::default_prompt(zf::SampleType::kCrystalline);
  opts.ranking = zc::BoxPromptOptions::Ranking::kSamScore;
  const zc::SliceResult forced = pipe.segment_with_box(ready, box, opts);
  const zc::SliceResult plain = pipe.segment_with_box(ready, box);
  EXPECT_FALSE(forced.grounding.has_direction);
  for (std::size_t i = 0; i < plain.mask.pixels().size(); ++i) {
    ASSERT_EQ(plain.mask.pixels()[i], forced.mask.pixels()[i]);
  }
}

TEST(BoxPromptOptions, PromptedOptionsUseTextGuidedRanking) {
  // The prompt-string overload removed in PR 5 routed here; the options
  // path must keep the text's concept direction for mask selection.
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Box box{10, 10, 100, 60};
  const std::string prompt = zf::default_prompt(zf::SampleType::kCrystalline);
  const zc::SliceResult via_opts =
      pipe.segment_with_box(ready, box, zc::BoxPromptOptions{prompt, {}});
  EXPECT_TRUE(via_opts.grounding.has_direction);
  EXPECT_EQ(via_opts.box_masks.size(), 1u);
}

TEST(VolumeRequest, ValidateRejectsZeroOrMultipleSources) {
  zc::VolumeRequest none;
  EXPECT_FALSE(none.validate().empty());
  EXPECT_THROW((void)zc::ZenesisPipeline{}.segment_volume(none),
               std::invalid_argument);

  zc::VolumeRequest both;
  both.volume = zi::VolumeU16(4, 4, 2);
  both.tiff_path = "whatever.tif";
  EXPECT_FALSE(both.validate().empty());
  EXPECT_THROW((void)zc::ZenesisPipeline{}.segment_volume(both),
               std::invalid_argument);
}

TEST(VolumeRequest, SourceSpellingsAndDeprecatedForwardersAgree) {
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  const std::string prompt = zf::default_prompt(zf::SampleType::kCrystalline);
  zc::ZenesisPipeline pipe;
  const zc::VolumeResult borrowed =
      pipe.segment_volume(zc::VolumeRequest::view(vol.volume, prompt));
  const zc::VolumeResult owned =
      pipe.segment_volume(zc::VolumeRequest::in_memory(vol.volume, prompt));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const zc::VolumeResult via_old = pipe.segment_volume(vol.volume, prompt);
#pragma GCC diagnostic pop
  ASSERT_EQ(borrowed.slices.size(), owned.slices.size());
  ASSERT_EQ(borrowed.slices.size(), via_old.slices.size());
  for (std::size_t z = 0; z < borrowed.slices.size(); ++z) {
    const auto want = borrowed.slices[z].mask.pixels();
    const auto got_owned = owned.slices[z].mask.pixels();
    const auto got_old = via_old.slices[z].mask.pixels();
    ASSERT_EQ(want.size(), got_owned.size());
    ASSERT_EQ(want.size(), got_old.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got_owned[i]);
      ASSERT_EQ(want[i], got_old[i]);
    }
  }
  EXPECT_EQ(borrowed.refined_boxes, owned.refined_boxes);
  EXPECT_EQ(borrowed.refined_boxes, via_old.refined_boxes);
}
