// Numeric kernel tests: matmul, softmax, layernorm, attention et al.
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zt = zenesis::tensor;

TEST(Matmul, SmallKnownProduct) {
  zt::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  zt::Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  zt::Tensor c = zt::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNeutral) {
  zt::Tensor a({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  zt::Tensor eye({3, 3});
  for (int i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  zt::Tensor c = zt::matmul(a, eye);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(c.at(i, j), a.at(i, j));
  }
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  zt::Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(zt::matmul(a, b), std::invalid_argument);
}

TEST(MatmulNt, AgreesWithExplicitTranspose) {
  zt::Tensor a = zt::xavier_uniform(5, 7, 1, 1);
  zt::Tensor b = zt::xavier_uniform(4, 7, 1, 2);
  zt::Tensor direct = zt::matmul_nt(a, b);
  zt::Tensor via_t = zt::matmul(a, zt::transpose(b));
  ASSERT_EQ(direct.shape(), via_t.shape());
  for (std::int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct.flat()[static_cast<std::size_t>(i)],
                via_t.flat()[static_cast<std::size_t>(i)], 1e-5f);
  }
}

TEST(Linear, AddsBias) {
  zt::Tensor x({1, 2}, {1.0f, 1.0f});
  zt::Tensor w({3, 2}, {1, 0, 0, 1, 1, 1});
  zt::Tensor b({3}, {10.0f, 20.0f, 30.0f});
  zt::Tensor y = zt::linear(x, w, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 32.0f);
}

TEST(SoftmaxRows, RowsSumToOne) {
  zt::Tensor a = zt::xavier_uniform(10, 32, 3, 3);
  zt::softmax_rows(a);
  for (std::int64_t i = 0; i < 10; ++i) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < 32; ++j) {
      EXPECT_GE(a.at(i, j), 0.0f);
      sum += a.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxRows, InvariantToRowShift) {
  zt::Tensor a({1, 3}, {1.0f, 2.0f, 3.0f});
  zt::Tensor b({1, 3}, {101.0f, 102.0f, 103.0f});
  zt::softmax_rows(a);
  zt::softmax_rows(b);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(a.at(0, j), b.at(0, j), 1e-6f);
}

TEST(SoftmaxRows, LargeValuesDoNotOverflow) {
  zt::Tensor a({1, 2}, {1000.0f, 999.0f});
  zt::softmax_rows(a);
  EXPECT_TRUE(std::isfinite(a.at(0, 0)));
  EXPECT_GT(a.at(0, 0), a.at(0, 1));
}

TEST(LayernormRows, ProducesZeroMeanUnitVar) {
  zt::Tensor a = zt::xavier_uniform(4, 64, 5, 5);
  zt::scale_inplace(a, 10.0f);
  zt::layernorm_rows(a, zt::ones(64), zt::zeros(64));
  for (std::int64_t i = 0; i < 4; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (std::int64_t j = 0; j < 64; ++j) mean += a.at(i, j);
    mean /= 64.0f;
    for (std::int64_t j = 0; j < 64; ++j) {
      var += (a.at(i, j) - mean) * (a.at(i, j) - mean);
    }
    var /= 64.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(LayernormRows, GainAndBiasApply) {
  zt::Tensor a({1, 2}, {-1.0f, 1.0f});
  zt::Tensor g({2}, {2.0f, 2.0f});
  zt::Tensor b({2}, {5.0f, 5.0f});
  zt::layernorm_rows(a, g, b);
  EXPECT_NEAR(a.at(0, 0), 5.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(a.at(0, 1), 5.0f + 2.0f, 1e-3f);
}

TEST(Gelu, KnownValues) {
  zt::Tensor a({1, 3}, {0.0f, 100.0f, -100.0f});
  zt::gelu_inplace(a);
  EXPECT_NEAR(a.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(a.at(0, 1), 100.0f, 1e-3f);
  EXPECT_NEAR(a.at(0, 2), 0.0f, 1e-3f);
}

TEST(Relu, ClampsNegatives) {
  zt::Tensor a({1, 4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  zt::relu_inplace(a);
  EXPECT_EQ(a.at(0, 0), 0.0f);
  EXPECT_EQ(a.at(0, 1), 0.0f);
  EXPECT_EQ(a.at(0, 2), 0.5f);
  EXPECT_EQ(a.at(0, 3), 2.0f);
}

TEST(Attention, UniformKeysYieldMeanOfValues) {
  // All keys identical → softmax uniform → output = mean of values.
  zt::Tensor q({1, 4}, {1, 0, 0, 0});
  zt::Tensor k({3, 4});  // all zero keys → identical logits
  zt::Tensor v({3, 2}, {0, 0, 3, 3, 6, 6});
  zt::Tensor o = zt::attention(q, k, v);
  EXPECT_NEAR(o.at(0, 0), 3.0f, 1e-5f);
  EXPECT_NEAR(o.at(0, 1), 3.0f, 1e-5f);
}

TEST(Attention, SharpKeySelectsItsValue) {
  zt::Tensor q({1, 2}, {50.0f, 0.0f});
  zt::Tensor k({2, 2}, {1.0f, 0.0f, -1.0f, 0.0f});
  zt::Tensor v({2, 1}, {7.0f, -7.0f});
  zt::Tensor o = zt::attention(q, k, v);
  EXPECT_NEAR(o.at(0, 0), 7.0f, 1e-3f);
}

TEST(MultiheadAttention, SingleHeadMatchesPlainAttention) {
  zt::Tensor q = zt::xavier_uniform(5, 8, 7, 1);
  zt::Tensor k = zt::xavier_uniform(6, 8, 7, 2);
  zt::Tensor v = zt::xavier_uniform(6, 8, 7, 3);
  zt::Tensor a = zt::attention(q, k, v);
  zt::Tensor m = zt::multihead_attention(q, k, v, 1);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.flat()[static_cast<std::size_t>(i)],
                m.flat()[static_cast<std::size_t>(i)], 1e-5f);
  }
}

TEST(MultiheadAttention, OutputShape) {
  zt::Tensor q = zt::xavier_uniform(5, 8, 7, 1);
  zt::Tensor k = zt::xavier_uniform(6, 8, 7, 2);
  zt::Tensor v = zt::xavier_uniform(6, 8, 7, 3);
  zt::Tensor m = zt::multihead_attention(q, k, v, 4);
  EXPECT_EQ(m.dim(0), 5);
  EXPECT_EQ(m.dim(1), 8);
}

TEST(L2Normalize, RowsHaveUnitNorm) {
  zt::Tensor a({2, 3}, {3, 4, 0, 1, 1, 1});
  zt::l2_normalize_rows(a);
  EXPECT_NEAR(a.at(0, 0) * a.at(0, 0) + a.at(0, 1) * a.at(0, 1), 1.0f, 1e-5f);
}

TEST(L2Normalize, ZeroRowUntouched) {
  zt::Tensor a({1, 3});
  zt::l2_normalize_rows(a);
  for (float v : a.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(CosineSimilarity, SelfSimilarityIsOne) {
  zt::Tensor a = zt::xavier_uniform(3, 16, 9, 1);
  zt::Tensor s = zt::cosine_similarity(a, a);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(s.at(i, i), 1.0f, 1e-5f);
}

TEST(MeanRows, AveragesColumns) {
  zt::Tensor a({2, 2}, {1, 2, 3, 4});
  zt::Tensor m = zt::mean_rows(a);
  EXPECT_FLOAT_EQ(m.at(0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1), 3.0f);
}

TEST(Init, XavierDeterministicPerLayerId) {
  zt::Tensor a = zt::xavier_uniform(4, 4, 42, 1);
  zt::Tensor b = zt::xavier_uniform(4, 4, 42, 1);
  zt::Tensor c = zt::xavier_uniform(4, 4, 42, 2);
  EXPECT_EQ(a.flat()[0], b.flat()[0]);
  EXPECT_NE(a.flat()[0], c.flat()[0]);
}

TEST(Init, SinusoidalPositionsBounded) {
  zt::Tensor p = zt::sinusoidal_positions(16, 8);
  for (float v : p.flat()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Init, Sinusoidal2dDistinguishesPositions) {
  zt::Tensor p = zt::sinusoidal_positions_2d(4, 4, 16);
  // (0,0) and (3,3) must differ.
  float diff = 0.0f;
  for (std::int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(p.at(0, j) - p.at(15, j));
  }
  EXPECT_GT(diff, 0.1f);
}
