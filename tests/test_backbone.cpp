// Vision backbone + transformer block tests.
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/models/backbone.hpp"
#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zm = zenesis::models;
namespace zt = zenesis::tensor;
namespace zi = zenesis::image;

namespace {

zi::ImageF32 gradient_image(std::int64_t n) {
  zi::ImageF32 img(n, n, 1);
  for (std::int64_t y = 0; y < n; ++y) {
    for (std::int64_t x = 0; x < n; ++x) {
      img.at(x, y) = static_cast<float>(x) / static_cast<float>(n);
    }
  }
  return img;
}

}  // namespace

TEST(TransformerBlock, PreservesShape) {
  zm::TransformerBlock block(32, 4, 1, 1);
  zt::Tensor tokens = zt::xavier_uniform(10, 32, 2, 2);
  block.apply(tokens);
  EXPECT_EQ(tokens.dim(0), 10);
  EXPECT_EQ(tokens.dim(1), 32);
}

TEST(TransformerBlock, SmallBranchScaleIsNearIdentity) {
  zm::TransformerBlock block(32, 4, 1, 1, 0.01f);
  zt::Tensor tokens = zt::xavier_uniform(10, 32, 2, 2);
  zt::Tensor before = tokens;
  block.apply(tokens);
  double diff = 0.0, norm = 0.0;
  for (std::int64_t i = 0; i < tokens.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    diff += std::abs(tokens.flat()[idx] - before.flat()[idx]);
    norm += std::abs(before.flat()[idx]);
  }
  EXPECT_LT(diff, 0.2 * norm);
}

TEST(TransformerBlock, DeterministicAcrossInstances) {
  zm::TransformerBlock b1(16, 2, 5, 3), b2(16, 2, 5, 3);
  zt::Tensor t1 = zt::xavier_uniform(4, 16, 9, 9);
  zt::Tensor t2 = t1;
  b1.apply(t1);
  b2.apply(t2);
  for (std::int64_t i = 0; i < t1.numel(); ++i) {
    EXPECT_EQ(t1.flat()[static_cast<std::size_t>(i)],
              t2.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(TransformerBlock, DimHeadsValidated) {
  EXPECT_THROW(zm::TransformerBlock(30, 4, 1, 1), std::invalid_argument);
}

TEST(Backbone, GridAndTokenShapes) {
  zm::BackboneConfig cfg;
  cfg.patch_size = 8;
  cfg.dim = 32;
  zm::VisionBackbone bb(cfg);
  const auto maps = zm::compute_features(gradient_image(64));
  const auto enc = bb.encode(maps);
  EXPECT_EQ(enc.grid_h, 8);
  EXPECT_EQ(enc.grid_w, 8);
  EXPECT_EQ(enc.tokens.dim(0), 64);
  EXPECT_EQ(enc.tokens.dim(1), 32);
  EXPECT_EQ(enc.raw_features.dim(1), zm::kFeatureChannels);
  EXPECT_EQ(enc.mean_feature.dim(0), zm::kFeatureChannels);
}

TEST(Backbone, SharedProjectionAlignsModalities) {
  // The core multi-modal adaptation property: a text concept preferring
  // high intensity must score bright patches above dark patches after both
  // sides pass through the shared projection.
  zm::BackboneConfig cfg;
  cfg.patch_size = 8;
  cfg.dim = 64;
  zm::VisionBackbone bb(cfg);
  const auto maps = zm::compute_features(gradient_image(64));
  const auto enc = bb.encode(maps);

  zt::Tensor concept_vec({1, zm::kFeatureChannels});
  concept_vec.at(0, zm::kIntensity) = 1.5f;
  concept_vec.at(0, zm::kRank) = 1.2f;
  const zt::Tensor q = bb.project_text(concept_vec);
  const zt::Tensor scores = zt::matmul_nt(q, enc.tokens);

  // Patch 0 (left column, dark) vs patch grid_w-1 (right column, bright).
  const float dark = scores.at(0, 0);
  const float bright = scores.at(0, enc.grid_w - 1);
  EXPECT_GT(bright, dark);
}

TEST(Backbone, DeterministicEncoding) {
  zm::BackboneConfig cfg;
  zm::VisionBackbone a(cfg), b(cfg);
  const auto maps = zm::compute_features(gradient_image(32));
  const auto ea = a.encode(maps);
  const auto eb = b.encode(maps);
  for (std::int64_t i = 0; i < ea.tokens.numel(); ++i) {
    EXPECT_EQ(ea.tokens.flat()[static_cast<std::size_t>(i)],
              eb.tokens.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(Backbone, SeedChangesWeights) {
  zm::BackboneConfig c1, c2;
  c2.seed = c1.seed + 1;
  zm::VisionBackbone a(c1), b(c2);
  const auto maps = zm::compute_features(gradient_image(32));
  const auto ea = a.encode(maps);
  const auto eb = b.encode(maps);
  bool any_diff = false;
  for (std::int64_t i = 0; i < ea.tokens.numel() && !any_diff; ++i) {
    any_diff = ea.tokens.flat()[static_cast<std::size_t>(i)] !=
               eb.tokens.flat()[static_cast<std::size_t>(i)];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Backbone, ProjectTextValidatesShape) {
  zm::VisionBackbone bb;
  EXPECT_THROW(bb.project_text(zt::Tensor({2, 3})), std::invalid_argument);
}
