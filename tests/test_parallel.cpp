// Unit tests for the thread-pool substrate and data-parallel helpers:
// coverage/determinism of the loop helpers plus the lifecycle and failure
// modes the Mode-B volume pipeline depends on (many concurrent producers,
// wait_idle racing submit, destruction with pending tasks, exception
// capture, and re-entrant nested parallelism).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/parallel/thread_pool.hpp"

namespace zp = zenesis::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  zp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeResolvesToAtLeastOne) {
  zp::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  zp::ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&zp::ThreadPool::global(), &zp::ThreadPool::global());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  zp::parallel_for(0, kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  zp::parallel_for(5, 5, [&](std::int64_t) { called = true; });
  zp::parallel_for(7, 3, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, CoversRangeWithoutOverlap) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  zp::parallel_for_chunked(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForChunked, RespectsNonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  zp::parallel_for_chunked(100, 200, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  std::int64_t expected = 0;
  for (std::int64_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelReduce, MatchesSerialSum) {
  constexpr std::int64_t kN = 20000;
  const double got = zp::parallel_reduce(
      0, kN, 0.0,
      [](std::int64_t i, double acc) { return acc + static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const double got = zp::parallel_reduce(
      3, 3, 42.0, [](std::int64_t, double acc) { return acc + 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(ThreadPool, ManyProducersStress) {
  // Several threads hammer submit() concurrently while workers drain —
  // the Mode-B pattern of slice tasks forking nested kernel work.
  zp::ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.submit([&counter] { ++counter; });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPool, WaitIdleUnderConcurrentSubmit) {
  zp::ThreadPool pool(2);
  constexpr int kTasks = 2000;
  std::atomic<int> counter{0};
  std::thread producer([&pool, &counter] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&counter] { ++counter; });
      if (i % 64 == 0) std::this_thread::yield();
    }
  });
  // wait_idle must stay safe (and eventually return) while the queue is
  // being refilled from another thread.
  for (int i = 0; i < 50; ++i) pool.wait_idle();
  producer.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, DestructionDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    zp::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++counter;
      });
    }
    // No wait_idle: the destructor must run every queued task, then join.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ThrowingTaskIsCapturedAndRethrownOnWaitIdle) {
  zp::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Non-throwing tasks still ran, the error slot was cleared, and the
  // pool remains usable.
  EXPECT_EQ(counter.load(), 10);
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, TryRunOneExecutesQueuedWorkOnCaller) {
  zp::ThreadPool pool(1);
  // Park the single worker so queued tasks stay queued. Wait until the
  // worker has actually dequeued the parker before submitting more work;
  // otherwise try_run_one() below could pop the parker onto this thread
  // and block forever.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  pool.submit([&parked, &release] {
    parked = true;
    parked.notify_one();
    release.wait(false);
  });
  parked.wait(false);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  while (!pool.try_run_one()) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.try_run_one());
  release = true;
  release.notify_one();
  pool.wait_idle();
}

TEST(ParallelFor, BodyExceptionPropagatesToCaller) {
  zp::ThreadPool pool(4);
  std::atomic<int> ran{0};
  const auto launch = [&] {
    zp::parallel_for(0, 1000, [&](std::int64_t i) {
      if (i == 523) throw std::invalid_argument("bad index");
      ++ran;
    }, pool);
  };
  EXPECT_THROW(launch(), std::invalid_argument);
  // The pool survives and the error does not leak into unrelated waits.
  ran = 0;
  zp::parallel_for(0, 1000, [&](std::int64_t) { ++ran; }, pool);
  EXPECT_EQ(ran.load(), 1000);
  pool.wait_idle();
}

TEST(ParallelForChunked, BodyExceptionPropagatesToCaller) {
  zp::ThreadPool pool(4);
  const auto launch = [&] {
    zp::parallel_for_chunked(0, 512, 8, [](std::int64_t lo, std::int64_t) {
      if (lo >= 256) throw std::runtime_error("chunk failed");
    }, pool);
  };
  EXPECT_THROW(launch(), std::runtime_error);
  pool.wait_idle();
}

TEST(ParallelFor, NestedOnSamePoolCompletes) {
  // A parallel_for body that itself runs parallel_for on the SAME pool —
  // the shape of a Mode-B slice task invoking the filter kernels. Blocked
  // waiters must help drain the queue instead of deadlocking the pool.
  zp::ThreadPool pool(2);
  constexpr std::int64_t kOuter = 8;
  constexpr std::int64_t kInner = 512;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  zp::parallel_for_chunked(0, kOuter, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t o = lo; o < hi; ++o) {
      zp::parallel_for(0, kInner, [&, o](std::int64_t i) {
        ++hits[static_cast<std::size_t>(o * kInner + i)];
      }, pool);
    }
  }, pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelReduce, BodyExceptionPropagatesToCaller) {
  zp::ThreadPool pool(4);
  const auto launch = [&] {
    (void)zp::parallel_reduce(
        0, 1000, 0.0,
        [](std::int64_t i, double acc) {
          if (i == 700) throw std::logic_error("reduce failed");
          return acc + 1.0;
        },
        [](double a, double b) { return a + b; }, pool);
  };
  EXPECT_THROW(launch(), std::logic_error);
  pool.wait_idle();
}

TEST(ParallelFor, ResultIndependentOfPoolSize) {
  // The same computation on 1-thread and N-thread pools must agree —
  // the determinism contract the generator relies on.
  constexpr std::int64_t kN = 4096;
  std::vector<double> a(kN), b(kN);
  zp::ThreadPool one(1), many(8);
  zp::parallel_for(0, kN, [&](std::int64_t i) {
    a[static_cast<std::size_t>(i)] = static_cast<double>(i * i) * 0.5;
  }, one);
  zp::parallel_for(0, kN, [&](std::int64_t i) {
    b[static_cast<std::size_t>(i)] = static_cast<double>(i * i) * 0.5;
  }, many);
  EXPECT_EQ(a, b);
}
