// Unit tests for the thread-pool substrate and data-parallel helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/parallel/thread_pool.hpp"

namespace zp = zenesis::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  zp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeResolvesToAtLeastOne) {
  zp::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  zp::ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&zp::ThreadPool::global(), &zp::ThreadPool::global());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  zp::parallel_for(0, kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  zp::parallel_for(5, 5, [&](std::int64_t) { called = true; });
  zp::parallel_for(7, 3, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, CoversRangeWithoutOverlap) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  zp::parallel_for_chunked(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForChunked, RespectsNonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  zp::parallel_for_chunked(100, 200, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  std::int64_t expected = 0;
  for (std::int64_t i = 100; i < 200; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelReduce, MatchesSerialSum) {
  constexpr std::int64_t kN = 20000;
  const double got = zp::parallel_reduce(
      0, kN, 0.0,
      [](std::int64_t i, double acc) { return acc + static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, static_cast<double>(kN) * (kN - 1) / 2.0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const double got = zp::parallel_reduce(
      3, 3, 42.0, [](std::int64_t, double acc) { return acc + 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(ParallelFor, ResultIndependentOfPoolSize) {
  // The same computation on 1-thread and N-thread pools must agree —
  // the determinism contract the generator relies on.
  constexpr std::int64_t kN = 4096;
  std::vector<double> a(kN), b(kN);
  zp::ThreadPool one(1), many(8);
  zp::parallel_for(0, kN, [&](std::int64_t i) {
    a[static_cast<std::size_t>(i)] = static_cast<double>(i * i) * 0.5;
  }, one);
  zp::parallel_for(0, kN, [&](std::int64_t i) {
    b[static_cast<std::size_t>(i)] = static_cast<double>(i * i) * 0.5;
  }, many);
  EXPECT_EQ(a, b);
}
