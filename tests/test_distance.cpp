// Chamfer distance transform and nearest-foreground tests.
#include <gtest/gtest.h>

#include "zenesis/cv/distance.hpp"

namespace zc = zenesis::cv;
namespace zi = zenesis::image;

TEST(Distance, ZeroOnForeground) {
  zi::Mask m(5, 5);
  m.at(2, 2) = 1;
  const zi::ImageF32 d = zc::distance_to_foreground(m);
  EXPECT_FLOAT_EQ(d.at(2, 2), 0.0f);
}

TEST(Distance, GrowsWithSeparation) {
  zi::Mask m(9, 9);
  m.at(0, 0) = 1;
  const zi::ImageF32 d = zc::distance_to_foreground(m);
  EXPECT_GT(d.at(8, 0), d.at(4, 0));
  EXPECT_NEAR(d.at(4, 0), 4.0f, 0.5f);
  // Diagonal uses the 4/3 chamfer weight ≈ 1.33 per step.
  EXPECT_NEAR(d.at(3, 3), 4.0f, 0.6f);
}

TEST(Distance, AllBackgroundIsLarge) {
  const zi::ImageF32 d = zc::distance_to_foreground(zi::Mask(4, 4));
  for (float v : d.pixels()) EXPECT_GT(v, 1e6f);
}

TEST(NearestForeground, FindsClosestPixel) {
  zi::Mask m(10, 10);
  m.at(1, 1) = 1;
  m.at(8, 8) = 1;
  zi::Point out;
  ASSERT_TRUE(zc::nearest_foreground(m, {2, 2}, &out));
  EXPECT_EQ(out, (zi::Point{1, 1}));
  ASSERT_TRUE(zc::nearest_foreground(m, {7, 9}, &out));
  EXPECT_EQ(out, (zi::Point{8, 8}));
}

TEST(NearestForeground, EmptyMaskReturnsFalse) {
  zi::Point out;
  EXPECT_FALSE(zc::nearest_foreground(zi::Mask(4, 4), {0, 0}, &out));
}

TEST(NearestForeground, OnForegroundReturnsSelf) {
  zi::Mask m(4, 4);
  m.at(3, 0) = 1;
  zi::Point out;
  ASSERT_TRUE(zc::nearest_foreground(m, {3, 0}, &out));
  EXPECT_EQ(out, (zi::Point{3, 0}));
}
