// Determinism of the parallel Mode-B volume pipeline: any thread count,
// with the feature cache on or off, must reproduce the serial baseline
// byte-for-byte (masks, boxes, confidences, replacement bookkeeping).
// This is the contract that makes `volume_threads` a pure performance
// knob. Run under TSAN via tools/ci.sh to race-check the scheduling.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/models/feature_cache.hpp"

namespace {

using namespace zenesis;

fibsem::SyntheticVolume small_volume() {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = 96;
  cfg.height = 96;
  cfg.depth = 6;
  cfg.seed = 417;
  cfg.needle_count = 12;
  return fibsem::generate_volume(cfg);
}

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

core::PipelineConfig config_with(std::size_t threads, bool cache) {
  core::PipelineConfig cfg;
  cfg.volume_threads = threads;
  cfg.feature_cache.enabled = cache;
  return cfg;
}

void expect_masks_equal(const image::Mask& a, const image::Mask& b,
                        std::size_t slice) {
  ASSERT_EQ(a.width(), b.width()) << "slice " << slice;
  ASSERT_EQ(a.height(), b.height()) << "slice " << slice;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "slice " << slice << " pixel " << i;
  }
}

void expect_boxes_equal(const image::Box& a, const image::Box& b,
                        std::size_t slice) {
  EXPECT_EQ(a.x, b.x) << "slice " << slice;
  EXPECT_EQ(a.y, b.y) << "slice " << slice;
  EXPECT_EQ(a.w, b.w) << "slice " << slice;
  EXPECT_EQ(a.h, b.h) << "slice " << slice;
}

void expect_volume_results_equal(const core::VolumeResult& base,
                                 const core::VolumeResult& got) {
  ASSERT_EQ(base.slices.size(), got.slices.size());
  EXPECT_EQ(base.replaced_count, got.replaced_count);
  ASSERT_EQ(base.replaced, got.replaced);
  for (std::size_t i = 0; i < base.slices.size(); ++i) {
    expect_masks_equal(base.slices[i].mask, got.slices[i].mask, i);
    expect_boxes_equal(base.slices[i].primary_box, got.slices[i].primary_box, i);
    expect_boxes_equal(base.raw_boxes[i], got.raw_boxes[i], i);
    expect_boxes_equal(base.refined_boxes[i], got.refined_boxes[i], i);
    // Confidences must match exactly, not approximately: the parallel
    // path runs the identical arithmetic per slice.
    EXPECT_EQ(base.slices[i].confidence, got.slices[i].confidence)
        << "slice " << i;
    ASSERT_EQ(base.slices[i].box_masks.size(), got.slices[i].box_masks.size())
        << "slice " << i;
    for (std::size_t m = 0; m < base.slices[i].box_masks.size(); ++m) {
      EXPECT_EQ(base.slices[i].box_masks[m].confidence,
                got.slices[i].box_masks[m].confidence)
          << "slice " << i << " box mask " << m;
      expect_masks_equal(base.slices[i].box_masks[m].mask,
                         got.slices[i].box_masks[m].mask, i);
    }
  }
}

class VolumeParallelSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(VolumeParallelSweep, MatchesSerialBaseline) {
  const auto [threads, cache] = GetParam();
  const fibsem::SyntheticVolume vol = small_volume();

  const core::ZenesisPipeline serial(config_with(1, false));
  const core::VolumeResult base = serial.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));

  const core::ZenesisPipeline pipe(config_with(threads, cache));
  const core::VolumeResult got = pipe.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));

  expect_volume_results_equal(base, got);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndCache, VolumeParallelSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Bool()));

TEST(VolumeParallel, GlobalPoolDefaultMatchesSerialBaseline) {
  // volume_threads == 0 (the default) schedules on the process-global
  // pool — the configuration every example and bench runs with.
  const fibsem::SyntheticVolume vol = small_volume();
  const core::ZenesisPipeline serial(config_with(1, false));
  const core::ZenesisPipeline pooled(config_with(0, true));
  expect_volume_results_equal(serial.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt)),
                              pooled.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt)));
}

TEST(VolumeParallel, RepeatedRunHitsCache) {
  const fibsem::SyntheticVolume vol = small_volume();
  const core::ZenesisPipeline pipe(config_with(4, true));
  const core::VolumeResult first = pipe.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));
  const models::FeatureCacheStats after_first = pipe.cache_stats();
  // DINO and SAM share a backbone config by default, so each slice costs
  // exactly one encoder run on a cold cache.
  EXPECT_EQ(after_first.misses, static_cast<std::uint64_t>(vol.depth()));
  EXPECT_GE(after_first.hits, static_cast<std::uint64_t>(vol.depth()));

  const core::VolumeResult second = pipe.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));
  const models::FeatureCacheStats after_second = pipe.cache_stats();
  EXPECT_EQ(after_second.misses, after_first.misses)
      << "second pass over the same volume must be all hits";
  expect_volume_results_equal(first, second);
}

TEST(VolumeParallel, CacheOffRecordsNoTraffic) {
  const fibsem::SyntheticVolume vol = small_volume();
  const core::ZenesisPipeline pipe(config_with(2, false));
  (void)pipe.segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));
  const models::FeatureCacheStats s = pipe.cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(VolumeParallel, FurtherSegmentReusesCacheAcrossReruns) {
  const fibsem::SyntheticVolume vol = small_volume();
  const core::ZenesisPipeline pipe(config_with(1, true));
  const core::SliceResult parent =
      pipe.segment(image::AnyImage(vol.volume.slice(0)), kPrompt);
  const image::Box roi{8, 8, 64, 64};
  const core::SliceResult first = pipe.further_segment(parent, roi, kPrompt);
  const models::FeatureCacheStats cold = pipe.cache_stats();
  const auto mask_cold = pipe.mask_cache_stats();
  const core::SliceResult again = pipe.further_segment(parent, roi, kPrompt);
  const models::FeatureCacheStats warm = pipe.cache_stats();
  const auto mask_warm = pipe.mask_cache_stats();
  EXPECT_EQ(warm.misses, cold.misses)
      << "re-running Further Segment on the same ROI must not re-encode";
  // The rerun is absorbed by the mask-result cache (one hit for the
  // cropped ROI request), so it never even reaches the feature cache.
  EXPECT_GT(mask_warm.hits, mask_cold.hits);
  expect_masks_equal(first.mask, again.mask, 0);
}

TEST(VolumeParallel, SessionSurfacesCacheCountersInDashboard) {
  const fibsem::SyntheticVolume vol = small_volume();
  core::PipelineConfig cfg = config_with(2, true);
  core::Session session(cfg);
  (void)session.mode_b_segment_volume(core::VolumeRequest::view(vol.volume, kPrompt));
  session.publish_runtime_stats();
  const auto& stats = session.dashboard().stats();
  ASSERT_TRUE(stats.count("feature_cache_hits"));
  ASSERT_TRUE(stats.count("feature_cache_hit_rate"));
  EXPECT_GT(stats.at("feature_cache_hits"), 0.0);
  const std::string rendered = session.dashboard().render();
  EXPECT_NE(rendered.find("feature_cache_hit_rate"), std::string::npos);
}

TEST(FeatureCache, LruEvictsAndKeysByImageAndConfig) {
  models::FeatureCacheConfig cfg;
  cfg.capacity = 2;
  // One shard reproduces the exact global-LRU ordering this test pins
  // down; with several shards, recency is only compared within a shard.
  cfg.shards = 1;
  models::FeatureCache cache(cfg);
  const models::VisionBackbone backbone;

  image::ImageF32 a(32, 32, 1), b(32, 32, 1), c(32, 32, 1);
  a.fill(0.25f);
  b.fill(0.5f);
  c.fill(0.75f);

  (void)cache.encode(a, backbone);
  (void)cache.encode(b, backbone);
  (void)cache.encode(a, backbone);  // refresh a; b becomes LRU
  (void)cache.encode(c, backbone);  // evicts b
  (void)cache.encode(a, backbone);  // still resident
  models::FeatureCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.evictions, 1u);
  (void)cache.encode(b, backbone);  // must re-encode after eviction
  s = cache.stats();
  EXPECT_EQ(s.misses, 4u);

  // A different backbone configuration is a different key for the same
  // image: procedural weights differ, so the encodings must not be shared.
  models::BackboneConfig other;
  other.seed = 999;
  const models::VisionBackbone other_backbone(other);
  models::FeatureCache fresh;
  (void)fresh.encode(a, backbone);
  (void)fresh.encode(a, other_backbone);
  EXPECT_EQ(fresh.stats().misses, 2u);
  EXPECT_EQ(fresh.stats().hits, 0u);
}

TEST(FeatureCache, HitReturnsIdenticalEncoding) {
  models::FeatureCache cache;
  const models::VisionBackbone backbone;
  image::ImageF32 img(40, 24, 1);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      img.at(x, y) = static_cast<float>((x * 7 + y * 3) % 11) / 11.0f;
    }
  }
  const auto first = cache.encode(img, backbone);
  const auto second = cache.encode(img, backbone);
  EXPECT_EQ(first.get(), second.get()) << "a hit shares the stored object";
  const models::SamEncoded fresh = models::SamModel().encode(img);
  const auto cached_tokens = first->enc.tokens.flat();
  const auto fresh_tokens = fresh.enc.tokens.flat();
  ASSERT_EQ(cached_tokens.size(), fresh_tokens.size());
  for (std::size_t i = 0; i < cached_tokens.size(); ++i) {
    ASSERT_EQ(cached_tokens[i], fresh_tokens[i]);
  }
}

}  // namespace
