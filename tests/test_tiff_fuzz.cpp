// Structure-aware TIFF fuzzing as a deterministic regression test.
//
// The harness (tests/tiff_fuzz_harness.hpp) mutates every corpus entry —
// all supported format features — and asserts the robustness contract:
// each mutant either decodes or throws TiffError. Running it here means
// every CI configuration (including the ASAN and UBSAN stages of
// tools/ci.sh) replays the identical mutant set; any contract violation
// is reported with the corpus entry name and mutant index, which together
// with the fixed seed reproduce the failing input exactly.

#include <gtest/gtest.h>

#include "tests/tiff_fuzz_harness.hpp"

namespace {

using zenesis::io::TiffReadLimits;
using zenesis::io::fuzz::FuzzStats;
using zenesis::io::fuzz::run_fuzz;

// Tight limits keep the worst mutant's allocation small, so the "no
// over-limit allocation" half of the contract is exercised constantly.
TiffReadLimits fuzz_limits() {
  TiffReadLimits limits;
  limits.max_pages = 64;
  limits.max_pixels_per_page = 1ull << 22;
  limits.max_decoded_bytes = 16ull << 20;
  limits.max_ifd_entries = 64;
  return limits;
}

TEST(TiffFuzz, TwoThousandMutantsUpholdContract) {
  // 146 corpus entries x 48 mutants = 7008 mutants (>= the 2000 the
  // acceptance criteria require), identical on every run. A third of the
  // mutation cases are codec-aware (compression/predictor tag rewrites,
  // code-stream corruption, byte-count bombs), so the LZW and Deflate
  // error branches are probed thousands of times per run.
  const FuzzStats stats = run_fuzz(/*seed=*/0xC0FFEEull,
                                   /*mutants_per_entry=*/48, fuzz_limits());
  for (const std::string& failure : stats.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_TRUE(stats.failures.empty());
  EXPECT_GE(stats.mutants, 2000u);
  // Sanity on the mutation engine: some mutants must survive (flips in
  // pixel data) and some must be rejected (structural damage). A fuzzer
  // whose mutants all land on one side is not probing the boundary.
  EXPECT_GT(stats.decoded, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(TiffFuzz, DeterministicAcrossRuns) {
  const TiffReadLimits limits = fuzz_limits();
  const FuzzStats a = run_fuzz(42, 4, limits);
  const FuzzStats b = run_fuzz(42, 4, limits);
  EXPECT_EQ(a.mutants, b.mutants);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.rejected, b.rejected);
  for (int k = 0; k < 6; ++k) EXPECT_EQ(a.kind_counts[k], b.kind_counts[k]);
}

TEST(TiffFuzz, DifferentSeedsProduceDifferentMutants) {
  const TiffReadLimits limits = fuzz_limits();
  const FuzzStats a = run_fuzz(1, 8, limits);
  const FuzzStats b = run_fuzz(2, 8, limits);
  EXPECT_TRUE(a.failures.empty());
  EXPECT_TRUE(b.failures.empty());
  // Same mutant count, but the decode/reject split should differ for at
  // least one of the tracked counters (overwhelmingly likely).
  const bool identical = a.decoded == b.decoded && a.rejected == b.rejected;
  EXPECT_FALSE(identical && a.kind_counts[1] == b.kind_counts[1] &&
               a.kind_counts[2] == b.kind_counts[2]);
}

}  // namespace
