// Unit tests for the dependency-free TIFF segment codecs: LZW, zlib
// Deflate and the horizontal predictor. Round trips cover the code-width
// transitions and table resets; error cases pin the TiffError taxonomy
// (kTruncated = stream ends early, kCorruptIfd = malformed stream); the
// inflate vectors include a hand-assembled stored block and a stream
// produced against the RFC 1951 fixed-Huffman tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "zenesis/io/tiff_codec.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zio = zenesis::io;
namespace zc = zenesis::io::codec;

namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  // Mix of smooth ramps (predictor/compressor friendly) and noise so the
  // codecs see both match-heavy and literal-heavy input.
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(i / 7)
                        : static_cast<std::uint8_t>(rng());
  }
  return v;
}

void lzw_round_trip(const std::vector<std::uint8_t>& data) {
  const auto enc = zc::lzw_encode(data.data(), data.size());
  std::vector<std::uint8_t> dec(data.size());
  zc::lzw_decode(enc.data(), enc.size(), dec.data(), dec.size(), 0, 0);
  ASSERT_EQ(dec, data);
}

void zlib_round_trip(const std::vector<std::uint8_t>& data) {
  const auto enc = zc::zlib_deflate(data.data(), data.size());
  std::vector<std::uint8_t> dec(data.size());
  zc::zlib_inflate(enc.data(), enc.size(), dec.data(), dec.size(), 0, 0);
  ASSERT_EQ(dec, data);
}

zio::TiffErrorKind lzw_error_kind(const std::vector<std::uint8_t>& enc,
                                  std::size_t out_size) {
  std::vector<std::uint8_t> dec(out_size);
  try {
    zc::lzw_decode(enc.data(), enc.size(), dec.data(), dec.size(), 0, 0);
  } catch (const zio::TiffError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected TiffError";
  return zio::TiffErrorKind::kBadHeader;
}

zio::TiffErrorKind inflate_error_kind(const std::vector<std::uint8_t>& enc,
                                      std::size_t out_size) {
  std::vector<std::uint8_t> dec(out_size);
  try {
    zc::zlib_inflate(enc.data(), enc.size(), dec.data(), dec.size(), 0, 0);
  } catch (const zio::TiffError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected TiffError";
  return zio::TiffErrorKind::kBadHeader;
}

}  // namespace

// --- LZW -------------------------------------------------------------------

TEST(TiffCodecLzw, RoundTripsAcrossWidthTransitions) {
  // 300 distinct pairs push the table past 511 (9->10 bits); 4 KiB of
  // noise crosses 1023; the big sizes force 11/12-bit codes and, at
  // 64 KiB+, the encoder's mid-stream Clear/reset.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{300}, std::size_t{4096},
        std::size_t{20000}, std::size_t{1} << 17}) {
    lzw_round_trip(pattern(n, static_cast<std::uint32_t>(n) + 1));
  }
}

TEST(TiffCodecLzw, RoundTripsRunHeavyInput) {
  // All-equal input exercises the KwKwK code path densely.
  lzw_round_trip(std::vector<std::uint8_t>(10000, 0xA5));
}

TEST(TiffCodecLzw, TruncatedStreamThrowsTruncated) {
  const auto data = pattern(2000, 9);
  auto enc = zc::lzw_encode(data.data(), data.size());
  enc.resize(enc.size() / 2);
  EXPECT_EQ(lzw_error_kind(enc, data.size()), zio::TiffErrorKind::kTruncated);
}

TEST(TiffCodecLzw, EarlyEoiThrowsTruncated) {
  // Encode 4 bytes but ask the decoder for 8: EOI arrives early.
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  const auto enc = zc::lzw_encode(data.data(), data.size());
  EXPECT_EQ(lzw_error_kind(enc, 8), zio::TiffErrorKind::kTruncated);
}

TEST(TiffCodecLzw, UndefinedCodeThrowsCorrupt) {
  // Clear(256) then code 300: references a table entry that was never
  // defined (first code after Clear must be a root).
  // 9-bit MSB packing: 100000000 100101100 -> 0x80 0x4B 0x00.
  const std::vector<std::uint8_t> enc = {0x80, 0x4B, 0x00};
  EXPECT_EQ(lzw_error_kind(enc, 16), zio::TiffErrorKind::kCorruptIfd);
}

TEST(TiffCodecLzw, OutputOverrunThrowsCorrupt) {
  // A valid stream for 8 bytes decoded into a 4-byte output that splits
  // mid-code: the declared size is the contract, overshoot is corruption
  // (size-bomb guard). (The run [7]x8 encodes as codes of length 1, 2, 3,
  // 2 — so 4 declared bytes land inside the third code.)
  const std::vector<std::uint8_t> data = {7, 7, 7, 7, 7, 7, 7, 7};
  const auto enc = zc::lzw_encode(data.data(), data.size());
  EXPECT_EQ(lzw_error_kind(enc, 4), zio::TiffErrorKind::kCorruptIfd);
}

// --- Deflate / zlib --------------------------------------------------------

TEST(TiffCodecZlib, RoundTripsMixedContent) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{257}, std::size_t{5000},
        std::size_t{1} << 16}) {
    zlib_round_trip(pattern(n, static_cast<std::uint32_t>(n) + 3));
  }
  zlib_round_trip(std::vector<std::uint8_t>(100000, 0x42));  // long matches
}

TEST(TiffCodecZlib, Adler32MatchesKnownVectors) {
  // RFC 1950 examples: adler32("") = 1, adler32("Wikipedia") = 0x11E60398.
  EXPECT_EQ(zc::adler32(nullptr, 0), 1u);
  const std::uint8_t wiki[] = {'W', 'i', 'k', 'i', 'p', 'e', 'd', 'i', 'a'};
  EXPECT_EQ(zc::adler32(wiki, sizeof(wiki)), 0x11E60398u);
  // NMAX deferred-modulo path: 1 MiB of 0xFF must not overflow.
  const std::vector<std::uint8_t> big(1 << 20, 0xFF);
  const std::uint32_t a = zc::adler32(big.data(), big.size());
  std::uint64_t s1 = 1, s2 = 0;
  for (const std::uint8_t b : big) {
    s1 = (s1 + b) % 65521;
    s2 = (s2 + s1) % 65521;
  }
  EXPECT_EQ(a, static_cast<std::uint32_t>((s2 << 16) | s1));
}

TEST(TiffCodecZlib, StoredBlockHandAssembled) {
  // zlib header 0x78 0x01, stored block (BFINAL=1 BTYPE=00), LEN=3,
  // payload "abc", adler32 trailer (big-endian).
  const std::uint8_t payload[] = {'a', 'b', 'c'};
  const std::uint32_t adler = zc::adler32(payload, 3);
  std::vector<std::uint8_t> enc = {0x78, 0x01, 0x01, 3, 0,
                                   static_cast<std::uint8_t>(~3 & 0xFF), 0xFF,
                                   'a', 'b', 'c'};
  for (int i = 3; i >= 0; --i) {
    enc.push_back(static_cast<std::uint8_t>(adler >> (8 * i)));
  }
  std::vector<std::uint8_t> dec(3);
  zc::zlib_inflate(enc.data(), enc.size(), dec.data(), 3, 0, 0);
  EXPECT_EQ(dec, std::vector<std::uint8_t>({'a', 'b', 'c'}));
}

TEST(TiffCodecZlib, BadHeaderThrowsCorrupt) {
  // FCHECK violation: 0x78 0x00 is not a multiple of 31.
  EXPECT_EQ(inflate_error_kind({0x78, 0x00, 0x01, 0x00}, 1),
            zio::TiffErrorKind::kCorruptIfd);
  // FDICT set: preset dictionaries are outside the TIFF profile.
  EXPECT_EQ(inflate_error_kind({0x78, 0xBB, 0, 0, 0, 0}, 1),
            zio::TiffErrorKind::kCorruptIfd);
}

TEST(TiffCodecZlib, TruncationThrowsTruncated) {
  const auto data = pattern(4000, 21);
  auto enc = zc::zlib_deflate(data.data(), data.size());
  enc.resize(enc.size() / 3);
  EXPECT_EQ(inflate_error_kind(enc, data.size()),
            zio::TiffErrorKind::kTruncated);
  // Dropping only the adler trailer is also truncation.
  auto enc2 = zc::zlib_deflate(data.data(), data.size());
  enc2.resize(enc2.size() - 4);
  EXPECT_EQ(inflate_error_kind(enc2, data.size()),
            zio::TiffErrorKind::kTruncated);
}

TEST(TiffCodecZlib, ChecksumMismatchThrowsCorrupt) {
  const auto data = pattern(256, 5);
  auto enc = zc::zlib_deflate(data.data(), data.size());
  enc.back() ^= 0x01;  // corrupt the adler trailer
  EXPECT_EQ(inflate_error_kind(enc, data.size()),
            zio::TiffErrorKind::kCorruptIfd);
}

TEST(TiffCodecZlib, DeclaredSizeShorterThanStreamThrowsCorrupt) {
  const auto data = pattern(512, 11);
  const auto enc = zc::zlib_deflate(data.data(), data.size());
  EXPECT_EQ(inflate_error_kind(enc, 100), zio::TiffErrorKind::kCorruptIfd);
}

// --- Horizontal predictor --------------------------------------------------

TEST(TiffCodecPredictor, ApplyThenUndoIsIdentity) {
  for (const int bps : {1, 2, 4}) {
    for (const bool be : {false, true}) {
      const std::int64_t row_samples = 19, rows = 7;
      auto buf = pattern(
          static_cast<std::size_t>(row_samples * rows * bps),
          static_cast<std::uint32_t>(bps * 10 + be));
      const auto orig = buf;
      zc::predictor_apply(buf.data(), row_samples, rows, bps, be);
      EXPECT_NE(buf, orig) << "apply must change a non-constant buffer";
      zc::predictor_undo(buf.data(), row_samples, rows, bps, be);
      EXPECT_EQ(buf, orig) << "bps=" << bps << " be=" << be;
    }
  }
}

TEST(TiffCodecPredictor, DifferencesStayWithinRows) {
  // Two rows: [10 20 30], [5 5 5]. Differencing is per row, so the
  // second row's first sample stays 5 (no carry across the row break).
  std::vector<std::uint8_t> buf = {10, 20, 30, 5, 5, 5};
  zc::predictor_apply(buf.data(), 3, 2, 1, false);
  EXPECT_EQ(buf, std::vector<std::uint8_t>({10, 10, 10, 5, 0, 0}));
  zc::predictor_undo(buf.data(), 3, 2, 1, false);
  EXPECT_EQ(buf, std::vector<std::uint8_t>({10, 20, 30, 5, 5, 5}));
}

TEST(TiffCodecPredictor, SixteenBitRespectsFileByteOrder) {
  // One row, two 16-bit samples 0x0100 0x0105 -> difference 5. In the
  // file's byte order the delta must land in the low byte of sample 2.
  std::vector<std::uint8_t> le = {0x00, 0x01, 0x05, 0x01};
  zc::predictor_apply(le.data(), 2, 1, 2, false);
  EXPECT_EQ(le, std::vector<std::uint8_t>({0x00, 0x01, 0x05, 0x00}));
  std::vector<std::uint8_t> be = {0x01, 0x00, 0x01, 0x05};
  zc::predictor_apply(be.data(), 2, 1, 2, true);
  EXPECT_EQ(be, std::vector<std::uint8_t>({0x01, 0x00, 0x00, 0x05}));
}

TEST(TiffCodecPredictor, WrapsModuloSampleWidth) {
  // 0 after 255 differences to 1 (mod 256) and undoes back.
  std::vector<std::uint8_t> buf = {255, 0};
  zc::predictor_apply(buf.data(), 2, 1, 1, false);
  EXPECT_EQ(buf, std::vector<std::uint8_t>({255, 1}));
  zc::predictor_undo(buf.data(), 2, 1, 1, false);
  EXPECT_EQ(buf, std::vector<std::uint8_t>({255, 0}));
}
