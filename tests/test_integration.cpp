// End-to-end integration: the paper's headline comparison (Tables 1-3
// shape) on a reduced dataset, plus TIFF ingestion of a generated volume.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/tiff.hpp"

namespace zc = zenesis::core;
namespace ze = zenesis::eval;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

/// Runs the three methods over a few slices and returns the dashboard.
ze::Dashboard run_comparison(zf::SampleType type, std::int64_t slices) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = slices;
  cfg.seed = 2025;
  const auto vol = zf::generate_volume(cfg);

  zc::Session session;
  const std::string name = zf::sample_type_name(type);
  const char* prompt = zf::default_prompt(type);

  const zc::VolumeResult zen = session.mode_b_segment_volume(zc::VolumeRequest::view(vol.volume, prompt));
  for (std::int64_t z = 0; z < slices; ++z) {
    const zi::ImageF32 ready =
        session.pipeline().make_ready(zi::AnyImage(vol.volume.slice(z)));
    session.mode_c_evaluate(name, "zenesis", z, zen.slices[static_cast<std::size_t>(z)].mask,
                            vol.ground_truth[static_cast<std::size_t>(z)]);
    session.mode_c_evaluate(name, "otsu", z, zc::baseline_otsu(ready),
                            vol.ground_truth[static_cast<std::size_t>(z)]);
    session.mode_c_evaluate(name, "sam_only", z,
                            zc::baseline_sam_only(session.pipeline().sam(), ready),
                            vol.ground_truth[static_cast<std::size_t>(z)]);
  }
  return session.dashboard();
}

}  // namespace

TEST(Integration, CrystallineShapeMatchesPaper) {
  const ze::Dashboard d = run_comparison(zf::SampleType::kCrystalline, 3);
  const auto zen = d.summary("crystalline", "zenesis");
  const auto otsu = d.summary("crystalline", "otsu");
  const auto sam = d.summary("crystalline", "sam_only");

  // Zenesis strong (paper: acc .987 / IoU .857 / Dice .923).
  EXPECT_GT(zen.accuracy.mean, 0.9);
  EXPECT_GT(zen.iou.mean, 0.6);
  // Baselines collapse on crystalline (paper: Otsu IoU .161, SAM IoU .100).
  EXPECT_LT(otsu.iou.mean, 0.4);
  EXPECT_LT(sam.iou.mean, 0.4);
  // Ordering is the headline claim.
  EXPECT_GT(zen.iou.mean, otsu.iou.mean + 0.2);
  EXPECT_GT(zen.iou.mean, sam.iou.mean + 0.2);
}

TEST(Integration, AmorphousShapeMatchesPaper) {
  const ze::Dashboard d = run_comparison(zf::SampleType::kAmorphous, 3);
  const auto zen = d.summary("amorphous", "zenesis");
  const auto otsu = d.summary("amorphous", "otsu");
  const auto sam = d.summary("amorphous", "sam_only");

  EXPECT_GT(zen.iou.mean, 0.55);
  // Baselines mid-range on amorphous (paper: both IoU ≈ 0.40). At this
  // reduced 128-px size the patch grid is coarse, so the required margin
  // is smaller than the full-size benchmark's (~0.2, see bench/table*).
  EXPECT_LT(otsu.iou.mean, zen.iou.mean - 0.08);
  EXPECT_LT(sam.iou.mean, zen.iou.mean - 0.15);
  EXPECT_GT(otsu.iou.mean, 0.1);
}

TEST(Integration, TiffRoundTripThroughPipeline) {
  // Raw 16-bit multi-page TIFF → disk → read back → segment: the full
  // ingestion path a user exercises.
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 96;
  cfg.height = 96;
  cfg.depth = 2;
  cfg.seed = 11;
  const auto vol = zf::generate_volume(cfg);

  const std::string path =
      (std::filesystem::temp_directory_path() / "zenesis_it_vol.tif").string();
  zenesis::io::write_volume_tiff(path, vol.volume);
  const zi::VolumeU16 loaded = zenesis::io::read_volume_tiff_u16(path);
  std::remove(path.c_str());

  zc::Session session;
  const auto direct = session.mode_a_segment_slice(
      vol.volume, 1, zf::default_prompt(cfg.type));
  const auto via_disk = session.mode_a_segment_slice(
      loaded, 1, zf::default_prompt(cfg.type));
  EXPECT_DOUBLE_EQ(zi::mask_iou(direct.mask, via_disk.mask), 1.0);
}

TEST(Integration, HeuristicRefineProtectsVolumeConsistency) {
  // Volume mode with refinement must produce slice masks at least as
  // temporally consistent as raw per-slice segmentation.
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 6;
  cfg.seed = 31;
  const auto vol = zf::generate_volume(cfg);

  zc::PipelineConfig with, without;
  without.enable_heuristic_refine = false;
  const zc::ZenesisPipeline pipe_with(with), pipe_without(without);
  const char* prompt = zf::default_prompt(cfg.type);
  const double c_with =
      zenesis::volume3d::slice_consistency(pipe_with.segment_volume(zc::VolumeRequest::view(vol.volume, prompt)).masks());
  const double c_without = zenesis::volume3d::slice_consistency(
      pipe_without.segment_volume(zc::VolumeRequest::view(vol.volume, prompt)).masks());
  EXPECT_GE(c_with, c_without - 0.05);
}
