#pragma once
// Structure-aware zen_net protocol fuzzer.
//
// The wire contract of zenesis::net is binary: any client byte stream
// yields, per request the server actually decoded, exactly one terminal
// frame, every byte the server sends parses as a well-formed server
// frame, and the connection always terminates — never a crash, hang,
// unbounded buffer or leaked queue slot (see server.hpp "robustness
// contract"). This harness enforces that contract deterministically
// against a LIVE server: it builds a corpus of well-formed conversations
// (hello/slice in several pixel formats/volume-file/cancel/ping
// sequences), applies seeded structure-aware mutations — it knows the
// frame boundaries of each conversation and rewrites header fields
// (magic, version, type, request id, payload length incl. zero/huge/
// 0xFFFFFFFF), grafts payload-level corruption (dimension bombs, prompt
// length overflows), duplicates and reorders frames, truncates streams
// mid-header and mid-payload, and flips raw bytes — then replays every
// mutant on a fresh loopback connection and drains the server's reply
// under a watchdog.
//
// Mirrors tests/tiff_fuzz_harness.* (same SplitMix64 determinism, same
// gtest-free shape): tests/test_net_fuzz.cpp wraps it in a TEST and
// tools/ci.sh replays it under TSAN/ASAN/UBSan.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "zenesis/net/frame.hpp"

namespace zenesis::net {
class Server;
}

namespace zenesis::net::fuzz {

/// One well-formed conversation plus its frame boundaries (the structure
/// the mutators aim at).
struct CorpusEntry {
  std::string name;                  ///< e.g. "hello_slice_u16"
  std::vector<std::uint8_t> bytes;   ///< concatenated frames
  std::vector<std::size_t> offsets;  ///< start offset of each frame
};

/// Builds the conversation corpus. Images are tiny (<= 24x24) so a few
/// thousand mutants stay fast even under sanitizers.
std::vector<CorpusEntry> build_corpus();

struct FuzzStats {
  std::uint64_t mutants = 0;       ///< mutant conversations executed
  std::uint64_t responses = 0;     ///< kResponse frames received
  std::uint64_t rejected = 0;      ///< kRejected frames received
  std::uint64_t errors = 0;        ///< kError frames received
  std::uint64_t acks_pongs = 0;    ///< kHelloAck + kPong frames received
  std::uint64_t clean_eof = 0;     ///< connections the server closed cleanly
  std::uint64_t send_cut = 0;      ///< server closed while we were sending
  /// Contract violations (empty = pass). Capped at 20 entries.
  std::vector<std::string> failures;
};

/// Runs `mutants_per_entry` deterministic mutants of every corpus entry
/// (plus the pristine entry itself) against `server` — which must have
/// been built with `limits` — each on a fresh loopback connection.
/// `watchdog` bounds one conversation end-to-end: a server that neither
/// answers nor closes within it is a hang (contract violation). Same
/// seed => same mutants => same byte streams.
FuzzStats run_fuzz(Server& server, const NetLimits& limits,
                   std::uint64_t seed, std::size_t mutants_per_entry,
                   std::chrono::milliseconds watchdog);

}  // namespace zenesis::net::fuzz
