// SamModel tests: box prompts, point prompts, confidence scoring.
#include <gtest/gtest.h>

#include "zenesis/image/roi.hpp"
#include "zenesis/models/sam.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zm = zenesis::models;
namespace zi = zenesis::image;

namespace {

/// Bright disk on dark background, mild noise.
struct Scene {
  zi::ImageF32 img;
  zi::Mask gt;
};

Scene disk_scene() {
  Scene s{zi::ImageF32(128, 128, 1), zi::Mask(128, 128)};
  zenesis::parallel::Rng rng(21);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const double d2 = (x - 64.0) * (x - 64.0) + (y - 60.0) * (y - 60.0);
      const bool inside = d2 < 28.0 * 28.0;
      s.img.at(x, y) = (inside ? 0.75f : 0.25f) +
                       static_cast<float>(rng.normal(0.0, 0.02));
      s.gt.at(x, y) = inside ? 1 : 0;
    }
  }
  return s;
}

}  // namespace

TEST(SamBox, SegmentsObjectInsideBox) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_box(enc, {30, 26, 70, 70});
  EXPECT_GT(zi::mask_iou(pred.mask, s.gt), 0.85);
}

TEST(SamBox, DarkObjectPolarity) {
  // Invert the scene: dark disk on bright background.
  Scene s = disk_scene();
  for (float& v : s.img.pixels()) v = 1.0f - v;
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_box(enc, {30, 26, 70, 70});
  EXPECT_GT(zi::mask_iou(pred.mask, s.gt), 0.8);
}

TEST(SamBox, MaskConfinedToBox) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const zi::Box box{30, 26, 70, 70};
  const auto pred = sam.predict_box(enc, box);
  const zi::Box bounds = zi::mask_bounds(pred.mask);
  EXPECT_TRUE(bounds.empty() || !box.intersect(bounds).empty());
  EXPECT_GE(bounds.x, box.x - 2);
  EXPECT_LE(bounds.right(), box.right() + 2);
}

TEST(SamBox, EmptyBoxGivesEmptyMask) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_box(enc, {});
  EXPECT_EQ(zi::mask_area(pred.mask), 0);
  EXPECT_EQ(pred.confidence, 0.0);
}

TEST(SamBox, OutOfBoundsBoxClipped) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_box(enc, {-50, -50, 400, 400});
  EXPECT_GT(zi::mask_iou(pred.mask, s.gt), 0.6);
}

TEST(SamPoint, GrowsHomogeneousRegion) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_point(enc, {64, 60});  // inside the disk
  EXPECT_GT(zi::mask_iou(pred.mask, s.gt), 0.7);
}

TEST(SamPoint, BackgroundSeedSelectsBackground) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_point(enc, {5, 5});
  const zi::Mask bg = zi::mask_not(s.gt);
  EXPECT_GT(zi::mask_iou(pred.mask, bg), 0.7);
}

TEST(SamPoint, OutOfImagePointIsEmpty) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  EXPECT_EQ(zi::mask_area(sam.predict_point(enc, {-3, 4}).mask), 0);
  EXPECT_EQ(zi::mask_area(sam.predict_point(enc, {500, 4}).mask), 0);
}

TEST(SamConfidence, LargeStableRegionBeatsSmallNoisyOne) {
  // The max-confidence rule that drives the SAM-only failure: the large
  // homogeneous background must outrank a small noisy patch.
  zi::ImageF32 img(128, 128, 1);
  zenesis::parallel::Rng rng(31);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const bool speck = x >= 60 && x < 70 && y >= 60 && y < 70;
      img.at(x, y) = speck ? 0.6f + static_cast<float>(rng.normal(0.0, 0.15))
                           : 0.08f + static_cast<float>(rng.normal(0.0, 0.01));
    }
  }
  zm::SamModel sam;
  const auto enc = sam.encode(img);
  const auto big = sam.predict_point(enc, {10, 10});
  const auto small = sam.predict_point(enc, {64, 64});
  EXPECT_GT(big.confidence, small.confidence);
}

TEST(SamPrediction, ScoresWithinRanges) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto pred = sam.predict_box(enc, {30, 26, 70, 70});
  EXPECT_GE(pred.stability, 0.0);
  EXPECT_LE(pred.stability, 1.0);
  EXPECT_GE(pred.homogeneity, 0.0);
  EXPECT_LE(pred.homogeneity, 1.0);
  EXPECT_GE(pred.area_fraction, 0.0);
  EXPECT_LE(pred.area_fraction, 1.0);
  EXPECT_GE(pred.confidence, 0.0);
}

TEST(Sam, EncodeOncePromptMany) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  const auto p1 = sam.predict_box(enc, {30, 26, 70, 70});
  const auto p2 = sam.predict_box(enc, {30, 26, 70, 70});
  EXPECT_DOUBLE_EQ(zi::mask_iou(p1.mask, p2.mask), 1.0);
}
