// PGM/PPM writer/reader tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "zenesis/io/pnm.hpp"

namespace zio = zenesis::io;
namespace zi = zenesis::image;

namespace {
std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}
}  // namespace

TEST(Pnm, PgmRoundTrip) {
  const std::string path = temp_path("zenesis_test.pgm");
  zi::ImageU8 img(5, 3, 1);
  img.at(4, 2) = 200;
  img.at(0, 0) = 10;
  zio::write_pgm(path, img);
  const zi::ImageU8 back = zio::read_pgm(path);
  EXPECT_EQ(back.width(), 5);
  EXPECT_EQ(back.height(), 3);
  EXPECT_EQ(back.at(4, 2), 200);
  EXPECT_EQ(back.at(0, 0), 10);
  std::remove(path.c_str());
}

TEST(Pnm, PgmF32ClampsAndScales) {
  const std::string path = temp_path("zenesis_test_f32.pgm");
  zi::ImageF32 img(2, 1, 1);
  img.at(0, 0) = -0.5f;
  img.at(1, 0) = 2.0f;
  zio::write_pgm_f32(path, img);
  const zi::ImageU8 back = zio::read_pgm(path);
  EXPECT_EQ(back.at(0, 0), 0);
  EXPECT_EQ(back.at(1, 0), 255);
  std::remove(path.c_str());
}

TEST(Pnm, PpmRequiresRgb) {
  const std::string path = temp_path("zenesis_test.ppm");
  zi::ImageU8 rgb(2, 2, 3);
  rgb.at(1, 1, 2) = 99;
  zio::write_ppm(path, rgb);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
  EXPECT_THROW(zio::write_ppm(path, zi::ImageU8(2, 2, 1)), std::runtime_error);
}

TEST(Pnm, PgmRejectsMultichannel) {
  EXPECT_THROW(zio::write_pgm(temp_path("x.pgm"), zi::ImageU8(2, 2, 3)),
               std::runtime_error);
}

TEST(Pnm, ReadMissingFileThrows) {
  EXPECT_THROW(zio::read_pgm("/nonexistent/file.pgm"), std::runtime_error);
}
