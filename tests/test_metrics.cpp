// Metric definitions and aggregation tests.
#include <gtest/gtest.h>

#include "zenesis/eval/metrics.hpp"

#include "zenesis/image/geometry.hpp"

namespace ze = zenesis::eval;
namespace zi = zenesis::image;

namespace {

zi::Mask make_mask(std::int64_t w, std::int64_t h,
                   std::initializer_list<zi::Point> fg) {
  zi::Mask m(w, h);
  for (const auto& p : fg) m.at(p.x, p.y) = 1;
  return m;
}

}  // namespace

TEST(Confusion, CountsAllFourCells) {
  const zi::Mask pred = make_mask(2, 2, {{0, 0}, {1, 0}});
  const zi::Mask gt = make_mask(2, 2, {{0, 0}, {0, 1}});
  const ze::Confusion c = ze::confusion_counts(pred, gt);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 4);
}

TEST(Confusion, SizeMismatchThrows) {
  EXPECT_THROW(ze::confusion_counts(zi::Mask(2, 2), zi::Mask(3, 2)),
               std::invalid_argument);
}

TEST(Metrics, PerfectPrediction) {
  const zi::Mask m = make_mask(3, 3, {{1, 1}, {2, 2}});
  const ze::Metrics r = ze::compute_metrics(m, m);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.iou, 1.0);
  EXPECT_DOUBLE_EQ(r.dice, 1.0);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(Metrics, HalfOverlapKnownValues) {
  const zi::Mask pred = make_mask(4, 1, {{0, 0}, {1, 0}});
  const zi::Mask gt = make_mask(4, 1, {{1, 0}, {2, 0}});
  const ze::Metrics r = ze::compute_metrics(pred, gt);
  EXPECT_DOUBLE_EQ(r.iou, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.dice, 0.5);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
}

TEST(Metrics, DiceIouConsistency) {
  // dice = 2*iou/(1+iou) must hold for any masks.
  const zi::Mask pred = make_mask(5, 5, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const zi::Mask gt = make_mask(5, 5, {{1, 1}, {2, 2}, {4, 4}});
  const ze::Metrics r = ze::compute_metrics(pred, gt);
  EXPECT_NEAR(r.dice, 2.0 * r.iou / (1.0 + r.iou), 1e-12);
}

TEST(Metrics, BothEmptyIsPerfect) {
  const ze::Metrics r = ze::compute_metrics(zi::Mask(3, 3), zi::Mask(3, 3));
  EXPECT_DOUBLE_EQ(r.iou, 1.0);
  EXPECT_DOUBLE_EQ(r.dice, 1.0);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(Metrics, EmptyPredictionOnNonEmptyGt) {
  const zi::Mask gt = make_mask(3, 3, {{0, 0}});
  const ze::Metrics r = ze::compute_metrics(zi::Mask(3, 3), gt);
  EXPECT_DOUBLE_EQ(r.iou, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
}

TEST(Aggregate, MeanAndStd) {
  const double vals[] = {1.0, 2.0, 3.0, 4.0};
  const ze::Aggregate a = ze::aggregate(vals);
  EXPECT_DOUBLE_EQ(a.mean, 2.5);
  EXPECT_NEAR(a.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(a.count, 4);
}

TEST(Aggregate, EmptyIsZero) {
  const ze::Aggregate a = ze::aggregate({});
  EXPECT_EQ(a.count, 0);
  EXPECT_DOUBLE_EQ(a.mean, 0.0);
}

TEST(Summarize, RollsUpPerSlice) {
  std::vector<ze::Metrics> ms(3);
  ms[0].iou = 0.8;
  ms[1].iou = 0.9;
  ms[2].iou = 1.0;
  const ze::MetricSummary s = ze::summarize(ms);
  EXPECT_NEAR(s.iou.mean, 0.9, 1e-12);
  EXPECT_EQ(s.iou.count, 3);
}

TEST(FormatAggregate, PaperStyle) {
  ze::Aggregate a{0.947, 0.005, 10};
  EXPECT_EQ(ze::format_aggregate(a), "0.947±0.005");
}

TEST(BoundaryF1, PerfectBoundaryIsOne) {
  zi::Mask m(16, 16);
  for (std::int64_t y = 4; y < 12; ++y) {
    for (std::int64_t x = 4; x < 12; ++x) m.at(x, y) = 1;
  }
  EXPECT_DOUBLE_EQ(ze::boundary_f1(m, m), 1.0);
}

TEST(BoundaryF1, ShiftWithinToleranceStaysHigh) {
  zi::Mask a(32, 32), b(32, 32);
  for (std::int64_t y = 8; y < 20; ++y) {
    for (std::int64_t x = 8; x < 20; ++x) a.at(x, y) = 1;
  }
  for (std::int64_t y = 9; y < 21; ++y) {
    for (std::int64_t x = 9; x < 21; ++x) b.at(x, y) = 1;
  }
  EXPECT_GT(ze::boundary_f1(a, b, 2), 0.9);
  EXPECT_LT(ze::boundary_f1(a, b, 0), 0.7);
}

TEST(BoundaryF1, DegenerateCases) {
  EXPECT_DOUBLE_EQ(ze::boundary_f1(zi::Mask(8, 8), zi::Mask(8, 8)), 1.0);
  zi::Mask one(8, 8);
  one.at(4, 4) = 1;
  EXPECT_DOUBLE_EQ(ze::boundary_f1(one, zi::Mask(8, 8)), 0.0);
}
