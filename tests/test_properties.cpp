// Parameterized property tests: invariants swept over sizes, seeds and
// bit depths (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/cv/distance.hpp"
#include "zenesis/cv/morphology.hpp"
#include "zenesis/cv/threshold.hpp"
#include "zenesis/eval/metrics.hpp"
#include "zenesis/image/normalize.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/tiff.hpp"
#include "zenesis/parallel/rng.hpp"
#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zt = zenesis::tensor;
namespace zi = zenesis::image;
namespace zc = zenesis::cv;
namespace zio = zenesis::io;
namespace zp = zenesis::parallel;
namespace ze = zenesis::eval;

// ---------------------------------------------------------------- matmul

class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  const zt::Tensor a = zt::xavier_uniform(m, k, 11, 1);
  const zt::Tensor bt = zt::xavier_uniform(n, k, 11, 2);
  const zt::Tensor b = zt::transpose(bt);
  const zt::Tensor c = zt::matmul(a, b);
  const zt::Tensor c2 = zt::matmul_nt(a, bt);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (int kk = 0; kk < k; ++kk) ref += a.at(i, kk) * b.at(kk, j);
      ASSERT_NEAR(c.at(i, j), ref, 1e-4f) << m << "x" << k << "x" << n;
      ASSERT_NEAR(c2.at(i, j), ref, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulSweep,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 5, 7},
                                           std::tuple{16, 16, 16},
                                           std::tuple{1, 64, 3},
                                           std::tuple{33, 17, 9},
                                           std::tuple{70, 70, 2}));

// ---------------------------------------------------------- softmax rows

class SoftmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, IsDistributionAndOrderPreserving) {
  const int n = GetParam();
  zt::Tensor a = zt::xavier_uniform(4, n, 13, static_cast<std::uint64_t>(n));
  zt::scale_inplace(a, 7.0f);
  zt::Tensor before = a;
  zt::softmax_rows(a);
  for (int i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += a.at(i, j);
    ASSERT_NEAR(sum, 1.0f, 1e-4f);
    for (int j = 1; j < n; ++j) {
      // Softmax is monotone: larger logits → larger probabilities.
      if (before.at(i, j) > before.at(i, j - 1)) {
        ASSERT_GE(a.at(i, j), a.at(i, j - 1) - 1e-6f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxSweep,
                         ::testing::Values(1, 2, 5, 32, 257));

// -------------------------------------------------------- TIFF roundtrip

class TiffSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // w,h,bits

TEST_P(TiffSweep, RoundTripsExactly) {
  const auto [w, h, bits] = GetParam();
  zp::Rng rng(static_cast<std::uint64_t>(w * 1000 + h * 10 + bits));
  zi::ImageF32 f(w, h, 1);
  for (float& v : f.pixels()) v = static_cast<float>(rng.uniform());
  const zi::AnyImage img = zi::quantize(f, bits);
  zio::TiffStack stack;
  stack.pages.push_back(img);
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  ASSERT_EQ(back.pages.size(), 1u);
  ASSERT_EQ(zi::bit_depth(back.pages[0]), bits);
  const zi::ImageF32 a = zi::to_float(img);
  const zi::ImageF32 b = zi::to_float(back.pages[0]);
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    ASSERT_EQ(a.pixels()[i], b.pixels()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TiffSweep,
    ::testing::Values(std::tuple{1, 1, 8}, std::tuple{7, 3, 8},
                      std::tuple{16, 16, 16}, std::tuple{33, 9, 16},
                      std::tuple{5, 40, 32}, std::tuple{64, 64, 32}));

// --------------------------------------------------- morphology duality

class MorphologySweep : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
zi::Mask random_mask(std::int64_t w, std::int64_t h, std::uint64_t seed,
                     double density) {
  zp::Rng rng(seed);
  zi::Mask m(w, h);
  for (auto& v : m.pixels()) v = rng.uniform() < density ? 1 : 0;
  return m;
}
}  // namespace

TEST_P(MorphologySweep, ErosionDilationDuality) {
  // erode(m) == not(dilate(not m)) for a symmetric structuring element —
  // but only away from the border, where our erode's outside-is-background
  // convention and the duality's outside-is-foreground view differ.
  const zi::Mask m = random_mask(32, 32, GetParam(), 0.5);
  const zi::Mask a = zc::erode(m, 2, zc::Element::kDisk);
  const zi::Mask b = zi::mask_not(zc::dilate(zi::mask_not(m), 2, zc::Element::kDisk));
  for (std::int64_t y = 2; y < 30; ++y) {
    for (std::int64_t x = 2; x < 30; ++x) {
      ASSERT_EQ(a.at(x, y), b.at(x, y)) << "at " << x << "," << y;
    }
  }
}

TEST_P(MorphologySweep, OpenCloseAreIdempotent) {
  const zi::Mask m = random_mask(32, 32, GetParam() + 77, 0.4);
  const zi::Mask o1 = zc::open(m, 1, zc::Element::kSquare);
  const zi::Mask o2 = zc::open(o1, 1, zc::Element::kSquare);
  EXPECT_DOUBLE_EQ(zi::mask_iou(o1, o2), 1.0);
  const zi::Mask c1 = zc::close(m, 1, zc::Element::kSquare);
  const zi::Mask c2 = zc::close(c1, 1, zc::Element::kSquare);
  EXPECT_DOUBLE_EQ(zi::mask_iou(c1, c2), 1.0);
}

TEST_P(MorphologySweep, OpeningShrinksClosingGrows) {
  const zi::Mask m = random_mask(32, 32, GetParam() + 991, 0.5);
  const zi::Mask o = zc::open(m, 1);
  const zi::Mask c = zc::close(m, 1);
  EXPECT_LE(zi::mask_area(o), zi::mask_area(m));
  // open(m) ⊆ m everywhere; m ⊆ close(m) away from the border (the
  // outside-is-background convention lets the closing's erosion step eat
  // foreground touching the image edge).
  EXPECT_EQ(zi::mask_area(zi::mask_and(o, m)), zi::mask_area(o));
  for (std::int64_t y = 1; y < 31; ++y) {
    for (std::int64_t x = 1; x < 31; ++x) {
      if (m.at(x, y) != 0) ASSERT_EQ(c.at(x, y), 1) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphologySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------ IoU/Dice invariants

// The dashboard numbers the pipeline refactors are judged against: if
// these invariants drift, every table in Mode C is suspect.
class MetricSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricSweep, IouDiceInvariantsOnRandomMasks) {
  const std::uint64_t seed = GetParam();
  zp::Rng densities(seed, 555);
  const zi::Mask a = random_mask(40, 40, seed + 101, 0.2 + 0.6 * densities.uniform());
  const zi::Mask b = random_mask(40, 40, seed + 202, 0.2 + 0.6 * densities.uniform());

  const ze::Metrics ab = ze::compute_metrics(a, b);
  const ze::Metrics ba = ze::compute_metrics(b, a);

  // Symmetry: IoU and Dice are symmetric in their arguments.
  EXPECT_DOUBLE_EQ(ab.iou, ba.iou);
  EXPECT_DOUBLE_EQ(ab.dice, ba.dice);

  // Range and ordering: 0 ≤ IoU ≤ Dice ≤ 1.
  EXPECT_GE(ab.iou, 0.0);
  EXPECT_LE(ab.iou, ab.dice);
  EXPECT_LE(ab.dice, 1.0);

  // Algebraic identity: Dice = 2·IoU / (1 + IoU) for set-based masks.
  EXPECT_NEAR(ab.dice, 2.0 * ab.iou / (1.0 + ab.iou), 1e-12);

  // Precision/recall swap under argument exchange.
  EXPECT_DOUBLE_EQ(ab.precision, ba.recall);
  EXPECT_DOUBLE_EQ(ab.recall, ba.precision);

  // Identity: a mask against itself scores perfectly.
  const ze::Metrics self = ze::compute_metrics(a, a);
  EXPECT_DOUBLE_EQ(self.iou, 1.0);
  EXPECT_DOUBLE_EQ(self.dice, 1.0);
  EXPECT_DOUBLE_EQ(self.accuracy, 1.0);
}

TEST_P(MetricSweep, DisjointAndDegenerateMasks) {
  const std::uint64_t seed = GetParam();
  // Disjoint halves: left-only vs right-only foreground.
  zi::Mask left(32, 32), right(32, 32);
  const zi::Mask noise = random_mask(32, 32, seed + 7, 0.5);
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      if (noise.at(x, y) == 0) continue;
      (x < 16 ? left : right).at(x, y) = 1;
    }
  }
  if (zi::mask_area(left) == 0 || zi::mask_area(right) == 0) GTEST_SKIP();
  const ze::Metrics disjoint = ze::compute_metrics(left, right);
  EXPECT_DOUBLE_EQ(disjoint.iou, 0.0);
  EXPECT_DOUBLE_EQ(disjoint.dice, 0.0);

  // Documented conventions: empty-vs-empty is perfect agreement, exactly
  // one empty mask is total disagreement.
  const zi::Mask empty(32, 32);
  const ze::Metrics both_empty = ze::compute_metrics(empty, empty);
  EXPECT_DOUBLE_EQ(both_empty.iou, 1.0);
  EXPECT_DOUBLE_EQ(both_empty.dice, 1.0);
  const ze::Metrics one_empty = ze::compute_metrics(left, empty);
  EXPECT_DOUBLE_EQ(one_empty.iou, 0.0);
  EXPECT_DOUBLE_EQ(one_empty.dice, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 2026u));

// ----------------------------------------------------- distance bounds

class DistanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceSweep, ChamferApproximatesEuclidean) {
  const zi::Mask m = random_mask(24, 24, GetParam() + 31, 0.05);
  if (zi::mask_area(m) == 0) GTEST_SKIP();
  const zi::ImageF32 d = zc::distance_to_foreground(m);
  for (std::int64_t y = 0; y < 24; ++y) {
    for (std::int64_t x = 0; x < 24; ++x) {
      // Brute-force Euclidean distance.
      double best = 1e18;
      for (std::int64_t v = 0; v < 24; ++v) {
        for (std::int64_t u = 0; u < 24; ++u) {
          if (m.at(u, v) == 0) continue;
          const double dd = std::hypot(static_cast<double>(u - x),
                                       static_cast<double>(v - y));
          best = std::min(best, dd);
        }
      }
      // 3-4 chamfer error bound is ~8% of the true distance.
      ASSERT_NEAR(d.at(x, y), best, 0.09 * best + 0.34)
          << "at " << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceSweep, ::testing::Values(1u, 7u, 13u));

// -------------------------------------------------------- Otsu contrast

class OtsuSweep : public ::testing::TestWithParam<double> {};  // contrast

TEST_P(OtsuSweep, FindsCutBetweenWellSeparatedModes) {
  const double contrast = GetParam();
  zp::Rng rng(3);
  zi::ImageF32 img(64, 64, 1);
  const float lo = 0.3f, hi = 0.3f + static_cast<float>(contrast);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      img.at(x, y) = (x < 32 ? lo : hi) + static_cast<float>(rng.normal(0.0, 0.02));
    }
  }
  const zc::ThresholdResult r = zc::otsu_threshold(img);
  EXPECT_GT(r.threshold, lo);
  EXPECT_LT(r.threshold, hi);
}

INSTANTIATE_TEST_SUITE_P(Contrasts, OtsuSweep,
                         ::testing::Values(0.15, 0.3, 0.5));

// ---------------------------------------------------- RNG stream sweep

class RngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSweep, UniformMomentsHoldAcrossStreams) {
  zp::Rng rng(2026, GetParam());
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
  EXPECT_NEAR(sum2 / kN - 0.25, 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Streams, RngSweep,
                         ::testing::Values(0u, 1u, 17u, 1000u, 99999u));

// -------------------------------------------------- readiness invariance

class ReadinessSweep : public ::testing::TestWithParam<int> {};  // bits

TEST_P(ReadinessSweep, NormalizationIsBitDepthInvariant) {
  const int bits = GetParam();
  zp::Rng rng(5);
  zi::ImageF32 scene(48, 48, 1);
  for (float& v : scene.pixels()) {
    v = 0.1f + 0.15f * static_cast<float>(rng.uniform());  // narrow sliver
  }
  const zi::ImageF32 ready8 =
      zi::make_ai_ready(zi::quantize(scene, 8));
  const zi::ImageF32 ready = zi::make_ai_ready(zi::quantize(scene, bits));
  // Same scene through different containers → nearly identical outputs
  // (bounded by 8-bit quantization of a 0.15-range signal).
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ready.pixels().size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(
                                      ready.pixels()[i] - ready8.pixels()[i])));
  }
  EXPECT_LT(max_diff, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bits, ReadinessSweep, ::testing::Values(8, 16, 32));
