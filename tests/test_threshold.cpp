// Otsu and thresholding tests.
#include <gtest/gtest.h>

#include "zenesis/cv/threshold.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zc = zenesis::cv;
namespace zi = zenesis::image;

namespace {

/// Bimodal image: left half around `lo`, right half around `hi`.
zi::ImageF32 bimodal(std::int64_t w, std::int64_t h, float lo, float hi,
                     float noise, std::uint64_t seed) {
  zenesis::parallel::Rng rng(seed);
  zi::ImageF32 img(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float base = x < w / 2 ? lo : hi;
      img.at(x, y) = base + static_cast<float>(rng.normal(0.0, noise));
    }
  }
  return img;
}

}  // namespace

TEST(OtsuBin, SeparatesTwoSpikes) {
  std::vector<std::int64_t> hist(256, 0);
  hist[40] = 1000;
  hist[200] = 1000;
  const int cut = zc::otsu_bin(hist);
  EXPECT_GE(cut, 40);
  EXPECT_LT(cut, 200);
}

TEST(OtsuBin, EmptyHistogramIsZero) {
  std::vector<std::int64_t> hist(256, 0);
  EXPECT_EQ(zc::otsu_bin(hist), 0);
}

TEST(OtsuBin, TooFewBinsThrows) {
  EXPECT_THROW(zc::otsu_bin({5}), std::invalid_argument);
}

TEST(OtsuThreshold, SplitsBimodalImage) {
  const zi::ImageF32 img = bimodal(64, 64, 0.2f, 0.8f, 0.03f, 1);
  const zc::ThresholdResult r = zc::otsu_threshold(img);
  EXPECT_GT(r.threshold, 0.3f);
  EXPECT_LT(r.threshold, 0.7f);
  // Right half must be foreground.
  std::int64_t correct = 0;
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      const bool fg = r.mask.at(x, y) != 0;
      correct += fg == (x >= 32);
    }
  }
  EXPECT_GT(static_cast<double>(correct) / (64 * 64), 0.99);
}

TEST(OtsuThreshold, DominatedByLargestContrast) {
  // Three phases: black 40%, gray 48%, bright 12%. Otsu's single cut must
  // fall between black and the rest — the paper's crystalline failure.
  zenesis::parallel::Rng rng(2);
  zi::ImageF32 img(100, 100, 1);
  for (std::int64_t y = 0; y < 100; ++y) {
    for (std::int64_t x = 0; x < 100; ++x) {
      float base = 0.05f;           // holder
      if (y < 60) base = 0.45f;     // membrane
      if (y < 60 && x < 12) base = 0.85f;  // needles (12% of membrane rows)
      img.at(x, y) = base + static_cast<float>(rng.normal(0.0, 0.02));
    }
  }
  const zc::ThresholdResult r = zc::otsu_threshold(img);
  EXPECT_LT(r.threshold, 0.45f);  // cut below the membrane level
  // So the "foreground" is membrane+needles, vastly over-segmenting.
  std::int64_t fg = 0;
  for (auto v : r.mask.pixels()) fg += v != 0;
  EXPECT_GT(fg, 50 * 100);
}

TEST(MultiOtsu, ThreeLevelsFindTwoCuts) {
  zenesis::parallel::Rng rng(3);
  zi::ImageF32 img(60, 60, 1);
  for (std::int64_t y = 0; y < 60; ++y) {
    for (std::int64_t x = 0; x < 60; ++x) {
      const float base = x < 20 ? 0.1f : (x < 40 ? 0.5f : 0.9f);
      img.at(x, y) = base + static_cast<float>(rng.normal(0.0, 0.02));
    }
  }
  const auto cuts = zc::multi_otsu(img, 3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_GT(cuts[0], 0.1f);
  EXPECT_LT(cuts[0], 0.5f);
  EXPECT_GT(cuts[1], 0.5f);
  EXPECT_LT(cuts[1], 0.9f);
}

TEST(MultiOtsu, LevelsValidated) {
  zi::ImageF32 img(4, 4, 1);
  EXPECT_THROW(zc::multi_otsu(img, 1), std::invalid_argument);
  EXPECT_THROW(zc::multi_otsu(img, 5), std::invalid_argument);
}

TEST(MultiOtsu, TwoLevelsAgreesWithOtsuRoughly) {
  const zi::ImageF32 img = bimodal(64, 64, 0.2f, 0.8f, 0.03f, 4);
  const auto cuts = zc::multi_otsu(img, 2);
  ASSERT_EQ(cuts.size(), 1u);
  const zc::ThresholdResult r = zc::otsu_threshold(img);
  EXPECT_NEAR(cuts[0], r.threshold, 0.06f);
}

TEST(FixedThreshold, StrictlyGreater) {
  zi::ImageF32 img(2, 1, 1);
  img.at(0, 0) = 0.5f;
  img.at(1, 0) = 0.51f;
  const zi::Mask m = zc::fixed_threshold(img, 0.5f);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(1, 0), 1);
}

TEST(AdaptiveMeanThreshold, TracksLocalShading) {
  // A bright blob on a linear shading ramp: a global threshold fails on
  // one side, the adaptive threshold does not.
  zi::ImageF32 img(80, 40, 1);
  for (std::int64_t y = 0; y < 40; ++y) {
    for (std::int64_t x = 0; x < 80; ++x) {
      img.at(x, y) = 0.2f + 0.5f * static_cast<float>(x) / 80.0f;
    }
  }
  // Two identical bumps at the dark and bright ends.
  for (std::int64_t y = 18; y < 22; ++y) {
    for (std::int64_t x = 8; x < 12; ++x) img.at(x, y) += 0.2f;
    for (std::int64_t x = 68; x < 72; ++x) img.at(x, y) += 0.2f;
  }
  const zi::Mask m = zc::adaptive_mean_threshold(img, 6, 0.05f);
  EXPECT_EQ(m.at(10, 20), 1);  // dark-end bump found
  EXPECT_EQ(m.at(70, 20), 1);  // bright-end bump found
  EXPECT_EQ(m.at(40, 5), 0);   // plain ramp is background
}
