// Unit + statistical tests for the deterministic splittable RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "zenesis/parallel/rng.hpp"

namespace zp = zenesis::parallel;

TEST(Rng, DeterministicForSameSeedAndStream) {
  zp::Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentStreamsDiffer) {
  zp::Rng a(123, 0), b(123, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, DifferentSeedsDiffer) {
  zp::Rng a(1, 0), b(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  zp::Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  zp::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  zp::Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  zp::Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScales) {
  zp::Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  zp::Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  zp::Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(400.0));
  EXPECT_NEAR(sum / kN, 400.0, 2.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  zp::Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, UniformIndexInRange) {
  zp::Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}
