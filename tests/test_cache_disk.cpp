// The persistent cache tier: record round-trips, crash/corruption
// recovery (truncation, bit flips, stale versions, wrong keys, orphaned
// temps), concurrent readers racing an atomic writer, the hardened
// SamEncoded codec under fuzzed input, and the obs-verified warm-restart
// contract: a fresh process on a warm disk store runs zero sam.encode
// spans.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "zenesis/cache/disk_store.hpp"
#include "zenesis/cache/serialize.hpp"
#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/obs/trace.hpp"

namespace {

using namespace zenesis;
using cache::DiskStore;
using cache::DiskStoreConfig;
using cache::Key128;

namespace fs = std::filesystem;

/// Unique on-disk scratch directory, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("zenesis_cache_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::vector<std::byte> make_payload(std::size_t n, unsigned seed) {
  std::vector<std::byte> p(n);
  std::mt19937 rng(seed);
  for (auto& b : p) b = static_cast<std::byte>(rng() & 0xFF);
  return p;
}

std::vector<std::byte> read_raw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<std::byte> out(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

void write_raw(const std::string& path, const std::vector<std::byte>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

models::SamEncoded real_encoding() {
  image::ImageF32 img(40, 32, 1);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      img.at(x, y) = static_cast<float>((3 * x + 5 * y) % 17) / 17.0f;
    }
  }
  return models::SamModel().encode(img);
}

// --- Round trips ---

TEST(DiskStore, PayloadRoundTripsByteForByte) {
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  const Key128 key{0x1234, 0x5678};
  const auto payload = make_payload(4096, 11);
  ASSERT_TRUE(store.put(key, payload));
  const auto got = store.get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  const auto s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.corrupt_drops, 0u);
}

TEST(DiskStore, EmptyPayloadAndMissingKeyBehave) {
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  EXPECT_FALSE(store.get(Key128{1, 2}).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  ASSERT_TRUE(store.put(Key128{1, 2}, {}));
  const auto got = store.get(Key128{1, 2});
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(SerializeEncoded, SamEncodedRoundTripsBitExactly) {
  const models::SamEncoded enc = real_encoding();
  const auto payload = cache::serialize_encoded(enc);
  EXPECT_FALSE(payload.empty());
  const auto back = cache::deserialize_encoded(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->maps.width, enc.maps.width);
  EXPECT_EQ(back->maps.height, enc.maps.height);
  for (std::size_t c = 0; c < enc.maps.channels.size(); ++c) {
    const auto a = enc.maps.channels[c].pixels();
    const auto b = back->maps.channels[c].pixels();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "channel " << c << " pixel " << i;
    }
  }
  const auto ta = enc.enc.tokens.flat();
  const auto tb = back->enc.tokens.flat();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta[i], tb[i]);
  EXPECT_EQ(back->enc.grid_h, enc.enc.grid_h);
  EXPECT_EQ(back->enc.grid_w, enc.enc.grid_w);
  EXPECT_EQ(back->enc.patch_size, enc.enc.patch_size);
  // The byte charge covers the real float payload.
  EXPECT_GT(cache::encoded_bytes(enc), payload.size() / 2);
}

// --- Corruption recovery ---

TEST(DiskStore, TruncatedRecordIsACleanMissAndIsDropped) {
  const auto payload = make_payload(512, 3);
  const Key128 key{7, 9};
  // Sweep truncation lengths across the header and into the payload.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{24},
        std::size_t{39}, std::size_t{40}, std::size_t{41}, std::size_t{300},
        std::size_t{551}}) {
    TempDir dir;
    DiskStore store(DiskStoreConfig{dir.str()});
    ASSERT_TRUE(store.put(key, payload));
    auto raw = read_raw(store.path_for(key));
    ASSERT_EQ(raw.size(), DiskStore::kHeaderBytes + payload.size());
    raw.resize(keep);
    write_raw(store.path_for(key), raw);
    EXPECT_FALSE(store.get(key).has_value()) << "keep=" << keep;
    EXPECT_EQ(store.stats().corrupt_drops, 1u) << "keep=" << keep;
    EXPECT_FALSE(fs::exists(store.path_for(key)))
        << "corrupt record must be deleted (keep=" << keep << ")";
    // The slot is free again: the next put rewrites and serves.
    ASSERT_TRUE(store.put(key, payload));
    EXPECT_EQ(store.get(key), payload);
  }
}

TEST(DiskStore, EveryByteFlipIsDetectedNeverWrongData) {
  const auto payload = make_payload(256, 5);
  const Key128 key{0xAB, 0xCD};
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  ASSERT_TRUE(store.put(key, payload));
  const auto pristine = read_raw(store.path_for(key));
  for (std::size_t off = 0; off < pristine.size(); ++off) {
    auto raw = pristine;
    raw[off] ^= std::byte{0x40};
    write_raw(store.path_for(key), raw);
    const auto got = store.get(key);
    // A flip in the reserved header word is the only tolerable survivor;
    // anywhere else the record must be rejected, and a served payload
    // must always equal what was written.
    if (got.has_value()) {
      EXPECT_TRUE(off >= 36 && off < 40)
          << "flip at offset " << off << " served a record";
      EXPECT_EQ(*got, payload);
    } else {
      EXPECT_FALSE(fs::exists(store.path_for(key)));
    }
    write_raw(store.path_for(key), pristine);  // restore for the next flip
  }
}

TEST(DiskStore, VersionMismatchIsIgnoredAndRewritten) {
  const auto payload = make_payload(128, 9);
  const Key128 key{21, 42};
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  ASSERT_TRUE(store.put(key, payload));
  auto raw = read_raw(store.path_for(key));
  raw[4] = std::byte{0x7F};  // future format version
  write_raw(store.path_for(key), raw);
  EXPECT_FALSE(store.get(key).has_value());
  const auto s = store.stats();
  EXPECT_EQ(s.version_mismatches, 1u);
  EXPECT_EQ(s.corrupt_drops, 0u) << "stale version is not corruption";
  EXPECT_FALSE(fs::exists(store.path_for(key)))
      << "stale record must yield its slot for the rewrite";
  ASSERT_TRUE(store.put(key, payload));
  EXPECT_EQ(store.get(key), payload);
}

TEST(DiskStore, RecordUnderTheWrongFilenameIsRejected) {
  const auto payload = make_payload(64, 2);
  const Key128 key{100, 200};
  const Key128 other{300, 400};
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  ASSERT_TRUE(store.put(key, payload));
  // Simulate a misplaced/renamed record: valid bytes, wrong slot.
  fs::copy_file(store.path_for(key), store.path_for(other));
  EXPECT_FALSE(store.get(other).has_value())
      << "embedded key must guard against renamed records";
  EXPECT_EQ(store.stats().corrupt_drops, 1u);
  EXPECT_EQ(store.get(key), payload) << "the rightful record is untouched";
}

TEST(DiskStore, OrphanedTempFilesAreSweptAtOpen) {
  TempDir dir;
  const fs::path crash_temp =
      dir.path() / "0000000000000001-0000000000000002.zfe.tmp-999-0";
  write_raw(crash_temp.string(), make_payload(100, 1));
  ASSERT_TRUE(fs::exists(crash_temp));
  DiskStore store(DiskStoreConfig{dir.str()});
  EXPECT_FALSE(fs::exists(crash_temp))
      << "a crashed writer's temp must not accumulate";
}

TEST(DiskStore, ScanReportsValidityAndPurgeEmptiesTheStore) {
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  ASSERT_TRUE(store.put(Key128{1, 1}, make_payload(64, 1)));
  ASSERT_TRUE(store.put(Key128{2, 2}, make_payload(64, 2)));
  auto raw = read_raw(store.path_for(Key128{2, 2}));
  raw.back() ^= std::byte{0xFF};
  write_raw(store.path_for(Key128{2, 2}), raw);

  const auto records = store.scan();
  ASSERT_EQ(records.size(), 2u);
  int valid = 0, invalid = 0;
  for (const auto& r : records) {
    if (r.valid) {
      ++valid;
      EXPECT_EQ(r.payload_bytes, 64u);
      EXPECT_TRUE(r.problem.empty());
    } else {
      ++invalid;
      EXPECT_FALSE(r.problem.empty());
    }
  }
  EXPECT_EQ(valid, 1);
  EXPECT_EQ(invalid, 1);
  EXPECT_EQ(store.stats().hits + store.stats().misses, 0u)
      << "scan must not touch traffic counters";

  EXPECT_EQ(store.purge(), 2u);
  EXPECT_TRUE(store.scan().empty());
}

TEST(DiskStore, UnusableDirectoryThrowsAtConstruction) {
  EXPECT_THROW(DiskStore(DiskStoreConfig{""}), std::invalid_argument);
  TempDir dir;
  const std::string file_path = (dir.path() / "a_file").string();
  write_raw(file_path, make_payload(4, 1));
  EXPECT_THROW(DiskStore(DiskStoreConfig{file_path}), std::invalid_argument);
}

// --- Concurrency: readers race an atomic writer ---

TEST(DiskStore, ConcurrentReadersSeeOnlyCompleteRecords) {
  TempDir dir;
  DiskStore store(DiskStoreConfig{dir.str()});
  const Key128 key{77, 88};
  const auto a = make_payload(32 * 1024, 1);
  const auto b = make_payload(48 * 1024, 2);
  ASSERT_TRUE(store.put(key, a));

  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};
  std::atomic<std::uint64_t> good_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto got = store.get(key);
        if (!got.has_value()) continue;  // mid-rename on non-POSIX only
        if (*got == a || *got == b) {
          good_reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(store.put(key, (i % 2 == 0) ? b : a));
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(torn_reads.load(), 0)
      << "a reader saw a torn record despite temp+rename";
  EXPECT_GT(good_reads.load(), 0u);
  EXPECT_EQ(store.stats().corrupt_drops, 0u);
}

// --- The hardened codec under hostile bytes ---

TEST(SerializeEncoded, FuzzedPayloadsNeverCrashTheParser) {
  const auto valid = cache::serialize_encoded(real_encoding());
  // Every strict truncation must fail cleanly (the format is
  // fully-consuming), including cuts inside dimension fields.
  for (std::size_t keep = 0; keep < valid.size();
       keep += 1 + keep / 7) {
    const auto got = cache::deserialize_encoded(valid.data(), keep);
    EXPECT_FALSE(got.has_value()) << "truncation at " << keep << " parsed";
  }
  // Random mutations: must never crash or over-allocate; parsing to a
  // value is acceptable when the damage lands in float payloads.
  std::mt19937_64 rng(99);
  for (int round = 0; round < 300; ++round) {
    auto fuzzed = valid;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      fuzzed[rng() % fuzzed.size()] ^= static_cast<std::byte>(1 + rng() % 255);
    }
    (void)cache::deserialize_encoded(fuzzed);
  }
  // Pure noise of various sizes.
  for (const std::size_t n : {0u, 1u, 7u, 39u, 40u, 41u, 1000u, 65536u}) {
    const auto noise = make_payload(n, static_cast<unsigned>(n) + 1);
    (void)cache::deserialize_encoded(noise);
  }
}

// --- Warm restart: the acceptance criterion ---

TEST(WarmRestart, SecondProcessSkipsEveryEncodeAndMatchesMasks) {
  TempDir dir;
  fibsem::SynthConfig synth;
  synth.type = fibsem::SampleType::kCrystalline;
  synth.width = 64;
  synth.height = 64;
  synth.depth = 3;
  synth.seed = 902;
  const fibsem::SyntheticVolume vol = fibsem::generate_volume(synth);
  const char* prompt = "bright needle-like crystalline catalyst";

  core::PipelineConfig cfg;
  cfg.volume_threads = 1;
  cfg.feature_cache.disk_path = dir.str();

  // Cold process: every slice is encoded once and persisted.
  const core::ZenesisPipeline cold(cfg);
  const core::VolumeResult first =
      cold.segment_volume(core::VolumeRequest::view(vol.volume, prompt));
  const auto cold_stats = cold.cache_stats();
  EXPECT_EQ(cold_stats.misses, static_cast<std::uint64_t>(synth.depth));
  EXPECT_EQ(cold_stats.disk_writes, static_cast<std::uint64_t>(synth.depth));

  // "Fresh process": a new pipeline (empty L1, empty mask cache) pointed
  // at the same directory. Obs-verified: the retained trace window must
  // contain zero sam.encode spans — the disk tier absorbed them all.
  const core::ZenesisPipeline warm(cfg);
  obs::TraceCollector::global().clear();
  obs::set_enabled(true);
  const core::VolumeResult second =
      warm.segment_volume(core::VolumeRequest::view(vol.volume, prompt));
  obs::set_enabled(false);
  std::uint64_t encodes = 0, disk_reads = 0;
  for (const auto& span : obs::TraceCollector::global().snapshot()) {
    if (std::string(span.name) == "sam.encode") ++encodes;
    if (std::string(span.name) == "cache.disk_read") ++disk_reads;
  }
  EXPECT_EQ(encodes, 0u)
      << "warm restart must serve every encoding from the disk tier";
  EXPECT_GT(disk_reads, 0u);
  const auto warm_stats = warm.cache_stats();
  EXPECT_EQ(warm_stats.misses, 0u);
  EXPECT_EQ(warm_stats.disk_hits, static_cast<std::uint64_t>(synth.depth));

  // Determinism across the restart: byte-identical masks.
  ASSERT_EQ(first.slices.size(), second.slices.size());
  for (std::size_t i = 0; i < first.slices.size(); ++i) {
    const auto pa = first.slices[i].mask.pixels();
    const auto pb = second.slices[i].mask.pixels();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      ASSERT_EQ(pa[p], pb[p]) << "slice " << i << " pixel " << p;
    }
  }
}

TEST(WarmRestart, UnusableDiskPathDegradesToMemoryOnly) {
  TempDir dir;
  const std::string file_path = (dir.path() / "not_a_dir").string();
  write_raw(file_path, make_payload(4, 1));
  core::PipelineConfig cfg;
  cfg.feature_cache.disk_path = file_path;  // a file, not a directory
  // Must not throw: the cache downgrades and counts the error.
  const core::ZenesisPipeline pipe(cfg);
  image::ImageF32 img(32, 32, 1);
  img.fill(0.3f);
  (void)pipe.segment_ready(img, "anything");
  EXPECT_GT(pipe.cache_stats().disk_errors, 0u);
}

}  // namespace
