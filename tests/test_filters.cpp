// Spatial filter tests.
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/cv/filters.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zc = zenesis::cv;
namespace zi = zenesis::image;

namespace {

zi::ImageF32 constant(std::int64_t w, std::int64_t h, float v) {
  zi::ImageF32 img(w, h, 1);
  img.fill(v);
  return img;
}

zi::ImageF32 noisy(std::int64_t w, std::int64_t h, float base, float sigma,
                   std::uint64_t seed) {
  zenesis::parallel::Rng rng(seed);
  zi::ImageF32 img(w, h, 1);
  for (float& v : img.pixels()) {
    v = base + static_cast<float>(rng.normal(0.0, sigma));
  }
  return img;
}

double variance(const zi::ImageF32& img) {
  double sum = 0.0, sum2 = 0.0;
  for (float v : img.pixels()) {
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(img.pixels().size());
  const double mean = sum / n;
  return sum2 / n - mean * mean;
}

}  // namespace

TEST(GaussianBlur, PreservesConstantImage) {
  const zi::ImageF32 img = constant(16, 16, 0.6f);
  const zi::ImageF32 out = zc::gaussian_blur(img, 2.0f);
  for (float v : out.pixels()) EXPECT_NEAR(v, 0.6f, 1e-5f);
}

TEST(GaussianBlur, ReducesNoiseVariance) {
  const zi::ImageF32 img = noisy(64, 64, 0.5f, 0.1f, 1);
  const zi::ImageF32 out = zc::gaussian_blur(img, 1.5f);
  EXPECT_LT(variance(out), variance(img) * 0.3);
}

TEST(GaussianBlur, ZeroSigmaIsIdentity) {
  const zi::ImageF32 img = noisy(8, 8, 0.5f, 0.1f, 2);
  const zi::ImageF32 out = zc::gaussian_blur(img, 0.0f);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out.pixels()[static_cast<std::size_t>(i)],
              img.pixels()[static_cast<std::size_t>(i)]);
  }
}

TEST(GaussianBlur, ApproximatelyConservesMean) {
  const zi::ImageF32 img = noisy(64, 64, 0.5f, 0.05f, 3);
  const zi::ImageF32 out = zc::gaussian_blur(img, 2.0f);
  double m_in = 0.0, m_out = 0.0;
  for (float v : img.pixels()) m_in += v;
  for (float v : out.pixels()) m_out += v;
  EXPECT_NEAR(m_in / 4096.0, m_out / 4096.0, 0.005);
}

TEST(BoxFilter, WindowMeanExact) {
  zi::ImageF32 img(3, 3, 1);
  float v = 1.0f;
  for (float& p : img.pixels()) p = v++;
  const zi::ImageF32 out = zc::box_filter(img, 1);
  EXPECT_NEAR(out.at(1, 1), 5.0f, 1e-5f);  // mean of 1..9
  EXPECT_NEAR(out.at(0, 0), (1 + 2 + 4 + 5) / 4.0f, 1e-5f);  // corner window
}

TEST(MedianFilter, RemovesSaltAndPepper) {
  zi::ImageF32 img = constant(16, 16, 0.5f);
  img.at(8, 8) = 1.0f;
  img.at(3, 3) = 0.0f;
  const zi::ImageF32 out = zc::median_filter(img, 1);
  EXPECT_NEAR(out.at(8, 8), 0.5f, 1e-6f);
  EXPECT_NEAR(out.at(3, 3), 0.5f, 1e-6f);
}

TEST(MedianFilter, RadiusValidated) {
  EXPECT_THROW(zc::median_filter(constant(4, 4, 0.0f), 8),
               std::invalid_argument);
}

TEST(MedianFilterLarge, AgreesWithExactMedianWithinQuantization) {
  const zi::ImageF32 img = noisy(48, 48, 0.5f, 0.1f, 9);
  const zi::ImageF32 exact = zc::median_filter(img, 4);
  const zi::ImageF32 fast = zc::median_filter_large(img, 4);
  // Interior only: the exact filter replicates edge pixels while the
  // histogram filter truncates its window at the border.
  for (std::int64_t y = 4; y < 44; ++y) {
    for (std::int64_t x = 4; x < 44; ++x) {
      ASSERT_NEAR(fast.at(x, y), exact.at(x, y), 1.0f / 256.0f + 1e-4f);
    }
  }
}

TEST(MedianFilterLarge, IgnoresThinBrightStructures) {
  // A 3-px bright stripe must not move the 12-px-window median — the
  // property the SAM surrogate's context estimate relies on.
  zi::ImageF32 img = constant(64, 64, 0.4f);
  for (std::int64_t x = 0; x < 64; ++x) {
    img.at(x, 31) = img.at(x, 32) = img.at(x, 33) = 0.9f;
  }
  const zi::ImageF32 med = zc::median_filter_large(img, 12);
  EXPECT_NEAR(med.at(32, 32), 0.4f, 0.01f);
}

TEST(MedianFilterLargeMasked, ExcludesForeground) {
  // Bright half-plane; estimating the background with the bright side
  // excluded must return the dark level even near the interface.
  zi::ImageF32 img(64, 64, 1);
  zi::Mask exclude(64, 64);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      const bool bright = x >= 32;
      img.at(x, y) = bright ? 0.8f : 0.3f;
      exclude.at(x, y) = bright ? 1 : 0;
    }
  }
  const zi::ImageF32 plain = zc::median_filter_large(img, 10);
  const zi::ImageF32 masked = zc::median_filter_large_masked(img, 10, exclude);
  // Near the interface the masked estimate stays at the background level
  // while the plain median follows the object.
  EXPECT_NEAR(masked.at(30, 32), 0.3f, 0.01f);
  EXPECT_NEAR(masked.at(33, 32), 0.3f, 0.01f);  // just inside the object
  EXPECT_NEAR(plain.at(40, 32), 0.8f, 0.01f);   // plain follows the object
  // Deep inside the object fewer than a quarter of the window pixels are
  // valid, so the masked filter falls back to the plain median.
  EXPECT_NEAR(masked.at(45, 32), plain.at(45, 32), 0.01f);
}

TEST(MedianFilterLarge, RoiMatchesFullImageInsideAndZeroOutside) {
  const zi::ImageF32 img = noisy(64, 48, 0.5f, 0.2f, 17);
  const zi::Box roi{9, 7, 23, 19};  // interior, window reaches past it
  for (const int radius : {3, 12, 40 /* window exceeds the image */}) {
    const zi::ImageF32 full = zc::median_filter_large(img, radius);
    const zi::ImageF32 part = zc::median_filter_large(img, radius, roi);
    for (std::int64_t y = 0; y < img.height(); ++y) {
      for (std::int64_t x = 0; x < img.width(); ++x) {
        if (roi.contains({x, y})) {
          ASSERT_EQ(part.at(x, y), full.at(x, y))
              << "r=" << radius << " (" << x << "," << y << ")";
        } else {
          ASSERT_EQ(part.at(x, y), 0.0f);
        }
      }
    }
  }
  // An ROI hanging over the image edge is clipped, not an error.
  const zi::ImageF32 over =
      zc::median_filter_large(img, 5, {-4, -4, 200, 200});
  const zi::ImageF32 full = zc::median_filter_large(img, 5);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      ASSERT_EQ(over.at(x, y), full.at(x, y));
    }
  }
}

TEST(MedianFilterLargeMasked, RoiAndPrecomputedFallbackMatchFullImage) {
  const zi::ImageF32 img = noisy(64, 48, 0.5f, 0.2f, 23);
  zi::Mask exclude(64, 48);
  for (std::int64_t y = 10; y < 30; ++y) {
    for (std::int64_t x = 12; x < 40; ++x) exclude.at(x, y) = 1;
  }
  const zi::Box roi{8, 6, 40, 30};
  for (const int radius : {4, 15}) {
    const zi::ImageF32 full =
        zc::median_filter_large_masked(img, radius, exclude);
    const zi::ImageF32 part =
        zc::median_filter_large_masked(img, radius, exclude, roi);
    const zi::ImageF32 fb = zc::median_filter_large(img, radius, roi);
    const zi::ImageF32 reused =
        zc::median_filter_large_masked(img, radius, exclude, roi, &fb);
    for (std::int64_t y = roi.y; y < roi.bottom(); ++y) {
      for (std::int64_t x = roi.x; x < roi.right(); ++x) {
        ASSERT_EQ(part.at(x, y), full.at(x, y))
            << "r=" << radius << " (" << x << "," << y << ")";
        ASSERT_EQ(reused.at(x, y), full.at(x, y));
      }
    }
  }
}

TEST(MedianFilterLargeMasked, FullyExcludedWindowFallsBack) {
  zi::ImageF32 img = constant(32, 32, 0.6f);
  zi::Mask all(32, 32);
  all.fill(1);
  const zi::ImageF32 masked = zc::median_filter_large_masked(img, 5, all);
  for (float v : masked.pixels()) EXPECT_NEAR(v, 0.6f, 0.01f);
  EXPECT_THROW(zc::median_filter_large_masked(img, 5, zi::Mask(8, 8)),
               std::invalid_argument);
}

TEST(SobelMagnitude, ZeroOnFlatStrongOnEdge) {
  zi::ImageF32 img(16, 16, 1);
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      img.at(x, y) = x < 8 ? 0.0f : 1.0f;
    }
  }
  const zi::ImageF32 g = zc::sobel_magnitude(img);
  EXPECT_NEAR(g.at(2, 8), 0.0f, 1e-6f);
  EXPECT_GT(g.at(7, 8), 1.0f);
  EXPECT_GT(g.at(8, 8), 1.0f);
}

TEST(LocalVariance, HighInTexturedRegion) {
  zi::ImageF32 img(32, 32, 1);
  zenesis::parallel::Rng rng(5);
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      img.at(x, y) =
          x < 16 ? 0.5f : 0.5f + static_cast<float>(rng.normal(0.0, 0.2));
    }
  }
  const zi::ImageF32 v = zc::local_variance(img, 3);
  EXPECT_LT(v.at(4, 16), 1e-6f);
  EXPECT_GT(v.at(28, 16), 0.005f);
}

TEST(AbsDiff, ElementwiseMagnitude) {
  zi::ImageF32 a(2, 1, 1), b(2, 1, 1);
  a.at(0, 0) = 0.2f;
  b.at(0, 0) = 0.5f;
  a.at(1, 0) = 0.9f;
  b.at(1, 0) = 0.4f;
  const zi::ImageF32 d = zc::abs_diff(a, b);
  EXPECT_NEAR(d.at(0, 0), 0.3f, 1e-6f);
  EXPECT_NEAR(d.at(1, 0), 0.5f, 1e-6f);
  EXPECT_THROW(zc::abs_diff(a, zi::ImageF32(3, 1, 1)), std::invalid_argument);
}
