// Heuristic volumetric box refinement tests (Fig. 7 behaviour).
#include <gtest/gtest.h>

#include "zenesis/volume3d/heuristic.hpp"

namespace zv = zenesis::volume3d;
namespace zi = zenesis::image;

namespace {

std::vector<zi::Box> stable_sequence(std::size_t n) {
  std::vector<zi::Box> boxes;
  for (std::size_t i = 0; i < n; ++i) {
    boxes.push_back({10 + static_cast<std::int64_t>(i), 20, 40, 30});
  }
  return boxes;
}

}  // namespace

TEST(MeanBox, AveragesComponents) {
  const std::vector<zi::Box> boxes = {{0, 0, 10, 10}, {10, 10, 20, 20}};
  const zi::Box m = zv::mean_box(boxes, 0, 2);
  EXPECT_EQ(m, (zi::Box{5, 5, 15, 15}));
}

TEST(MeanBox, SkipsEmptyBoxes) {
  const std::vector<zi::Box> boxes = {{0, 0, 10, 10}, {}, {20, 20, 10, 10}};
  const zi::Box m = zv::mean_box(boxes, 0, 3);
  EXPECT_EQ(m, (zi::Box{10, 10, 10, 10}));
}

TEST(MeanBox, AllEmptyIsEmpty) {
  EXPECT_TRUE(zv::mean_box({{}, {}}, 0, 2).empty());
}

TEST(Refine, StableSequenceUntouched) {
  const auto boxes = stable_sequence(8);
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_EQ(out.replaced_count, 0);
  EXPECT_EQ(out.boxes, boxes);
}

TEST(Refine, OversizedOutlierReplaced) {
  auto boxes = stable_sequence(8);
  boxes[5] = {0, 0, 200, 150};  // 5x blow-up: a DINO failure
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_TRUE(out.replaced[5]);
  EXPECT_EQ(out.replaced_count, 1);
  EXPECT_LT(out.boxes[5].w, 60);
  EXPECT_LT(out.boxes[5].h, 45);
}

TEST(Refine, UndersizedOutlierReplaced) {
  auto boxes = stable_sequence(8);
  boxes[6] = {30, 30, 5, 4};
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_TRUE(out.replaced[6]);
}

TEST(Refine, MissingDetectionFilledFromWindow) {
  auto boxes = stable_sequence(8);
  boxes[4] = {};  // detection failure
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_TRUE(out.replaced[4]);
  EXPECT_FALSE(out.boxes[4].empty());
  EXPECT_NEAR(static_cast<double>(out.boxes[4].w), 40.0, 1.0);
}

TEST(Refine, MissingNotFilledWhenDisabled) {
  auto boxes = stable_sequence(8);
  boxes[4] = {};
  zv::HeuristicConfig cfg;
  cfg.replace_missing = false;
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes, cfg);
  EXPECT_TRUE(out.boxes[4].empty());
  EXPECT_EQ(out.replaced_count, 0);
}

TEST(Refine, WarmupSlicesNotSizeChecked) {
  // A big first box is accepted (no window yet).
  std::vector<zi::Box> boxes = {{0, 0, 200, 200}};
  auto rest = stable_sequence(5);
  boxes.insert(boxes.end(), rest.begin(), rest.end());
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_FALSE(out.replaced[0]);
}

TEST(Refine, CorrectedWindowStopsErrorPropagation) {
  // Two consecutive failures: the second window must use the *corrected*
  // first value, keeping the average sane.
  auto boxes = stable_sequence(10);
  boxes[5] = {0, 0, 300, 300};
  boxes[6] = {0, 0, 300, 300};
  const zv::RefineOutcome out = zv::refine_box_sequence(boxes);
  EXPECT_TRUE(out.replaced[5]);
  EXPECT_TRUE(out.replaced[6]);
  EXPECT_LT(out.boxes[6].w, 60);
}

TEST(Refine, FactorSweepMonotone) {
  auto boxes = stable_sequence(10);
  boxes[5] = {10, 20, 70, 52};  // ~1.75x
  zv::HeuristicConfig strict, loose;
  strict.size_factor = 1.3;
  loose.size_factor = 2.5;
  EXPECT_TRUE(zv::refine_box_sequence(boxes, strict).replaced[5]);
  EXPECT_FALSE(zv::refine_box_sequence(boxes, loose).replaced[5]);
}

TEST(Refine, EmptyInputHandled) {
  const zv::RefineOutcome out = zv::refine_box_sequence({});
  EXPECT_TRUE(out.boxes.empty());
  EXPECT_EQ(out.replaced_count, 0);
}

TEST(SliceConsistency, IdenticalMasksGiveOne) {
  zi::Mask m(8, 8);
  m.at(3, 3) = 1;
  EXPECT_DOUBLE_EQ(zv::slice_consistency({m, m, m}), 1.0);
  EXPECT_DOUBLE_EQ(zv::slice_consistency({m}), 1.0);
}

TEST(SliceConsistency, DisjointMasksGiveZero) {
  zi::Mask a(8, 8), b(8, 8);
  a.at(0, 0) = 1;
  b.at(7, 7) = 1;
  EXPECT_DOUBLE_EQ(zv::slice_consistency({a, b}), 0.0);
}
