#include "tests/tiff_fuzz_harness.hpp"

#include <cstring>
#include <utility>

#include "zenesis/io/tiff_stream.hpp"

namespace zenesis::io::fuzz {
namespace {

// --- deterministic RNG (SplitMix64) ------------------------------------

struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// --- corpus -------------------------------------------------------------

template <typename T>
image::Image<T> ramp_page(std::int64_t w, std::int64_t h, std::int64_t page) {
  image::Image<T> img(w, h);
  // Per-sample-width scaling so multi-byte samples exercise both bytes.
  const std::uint64_t scale = sizeof(T) == 1 ? 1 : sizeof(T) == 2 ? 257 : 65537;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::uint64_t v = (static_cast<std::uint64_t>(x) + 7 * y + 37 * page) * scale;
      img.at(x, y) = static_cast<T>(v);
    }
  }
  return img;
}

TiffStack make_stack(int bits, std::int64_t w, std::int64_t h,
                     std::int64_t pages) {
  TiffStack stack;
  for (std::int64_t p = 0; p < pages; ++p) {
    if (bits == 8) {
      stack.pages.emplace_back(ramp_page<std::uint8_t>(w, h, p));
    } else if (bits == 16) {
      stack.pages.emplace_back(ramp_page<std::uint16_t>(w, h, p));
    } else {
      stack.pages.emplace_back(ramp_page<std::uint32_t>(w, h, p));
    }
  }
  return stack;
}

}  // namespace

namespace {

const char* comp_name(TiffCompression comp) {
  switch (comp) {
    case TiffCompression::kNone: return "_none";
    case TiffCompression::kPackBits: return "_packbits";
    case TiffCompression::kLzw: return "_lzw";
    case TiffCompression::kDeflate: return "_deflate";
  }
  return "_unknown";
}

}  // namespace

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;
  const int kBits[] = {8, 16, 32};
  // Odd width so tile/strip edge handling is always in play.
  const std::int64_t w = 19, h = 11, pages = 2;
  for (const TiffFormat fmt : {TiffFormat::kClassic, TiffFormat::kBigTiff}) {
    for (const TiffLayout layout : {TiffLayout::kStrips, TiffLayout::kTiles}) {
      for (const TiffCompression comp :
           {TiffCompression::kNone, TiffCompression::kPackBits,
            TiffCompression::kLzw, TiffCompression::kDeflate}) {
        // Predictor variants only where they change the code stream.
        const bool codec = comp == TiffCompression::kLzw ||
                           comp == TiffCompression::kDeflate;
        for (const int predictor : {1, 2}) {
          if (predictor == 2 && !codec) continue;
          for (const int bits : kBits) {
            for (const bool be : {false, true}) {
              TiffWriteOptions opt;
              opt.format = fmt;
              opt.layout = layout;
              opt.compression = comp;
              opt.predictor = predictor;
              opt.rows_per_strip = 4;  // multiple strips per page
              opt.tile_width = 16;
              opt.tile_height = 16;
              opt.big_endian = be;
              CorpusEntry e;
              e.name =
                  std::string(fmt == TiffFormat::kBigTiff ? "big" : "classic") +
                  (layout == TiffLayout::kTiles ? "_tiles" : "_strips") +
                  comp_name(comp) + (predictor == 2 ? "_pred" : "") + "_u" +
                  std::to_string(bits) + (be ? "_be" : "_le");
              e.bytes = write_tiff_bytes(make_stack(bits, w, h, pages), opt);
              corpus.push_back(std::move(e));
            }
          }
        }
      }
    }
  }
  // MinIsWhite variants (photometric 0), one classic and one BigTIFF.
  for (const TiffFormat fmt : {TiffFormat::kClassic, TiffFormat::kBigTiff}) {
    TiffWriteOptions opt;
    opt.format = fmt;
    opt.min_is_white = true;
    opt.rows_per_strip = 4;
    CorpusEntry e;
    e.name = std::string(fmt == TiffFormat::kBigTiff ? "big" : "classic") +
             "_miniswhite_u16_le";
    e.bytes = write_tiff_bytes(make_stack(16, w, h, pages), opt);
    corpus.push_back(std::move(e));
  }
  return corpus;
}

namespace {

// --- structure scan -----------------------------------------------------
// Walks a *well-formed* file (the pristine corpus entry) and records where
// the interesting bytes live, so mutations hit real parser decision points
// instead of mostly landing in pixel data.

struct EntryLoc {
  std::uint64_t off;  ///< file offset of the 12/20-byte IFD entry
  std::uint16_t tag;
};

struct Scan {
  bool be = false;
  bool big = false;
  std::vector<std::uint64_t> ifd_offsets;
  /// Offsets of every next-IFD pointer field, including the header's
  /// first-IFD pointer. Pointer width is 4 (classic) or 8 (BigTIFF).
  std::vector<std::uint64_t> link_offsets;
  std::vector<EntryLoc> entries;
};

std::uint64_t rd(const std::vector<std::uint8_t>& b, std::uint64_t off,
                 std::size_t n, bool be) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte = b[static_cast<std::size_t>(off) + i];
    v |= static_cast<std::uint64_t>(byte) << (be ? 8 * (n - 1 - i) : 8 * i);
  }
  return v;
}

void wr(std::vector<std::uint8_t>& b, std::uint64_t off, std::size_t n,
        bool be, std::uint64_t v) {
  if (off + n > b.size()) return;  // mutation out of range: skip silently
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte =
        static_cast<std::uint8_t>(v >> (be ? 8 * (n - 1 - i) : 8 * i));
    b[static_cast<std::size_t>(off) + i] = byte;
  }
}

Scan scan_structure(const std::vector<std::uint8_t>& b) {
  Scan s;
  s.be = b.at(0) == 'M';
  s.big = rd(b, 2, 2, s.be) == 43;
  const std::size_t psz = s.big ? 8 : 4;   // pointer width
  const std::size_t esz = s.big ? 20 : 12; // entry width
  std::uint64_t link = s.big ? 8 : 4;      // header's first-IFD pointer
  s.link_offsets.push_back(link);
  std::uint64_t ifd = rd(b, link, psz, s.be);
  while (ifd != 0 && s.ifd_offsets.size() < 64) {
    s.ifd_offsets.push_back(ifd);
    const std::uint64_t n = s.big ? rd(b, ifd, 8, s.be) : rd(b, ifd, 2, s.be);
    const std::uint64_t base = ifd + (s.big ? 8 : 2);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t off = base + i * esz;
      s.entries.push_back(
          EntryLoc{off, static_cast<std::uint16_t>(rd(b, off, 2, s.be))});
    }
    link = base + n * esz;
    s.link_offsets.push_back(link);
    ifd = rd(b, link, psz, s.be);
  }
  return s;
}

// --- mutation engine ----------------------------------------------------

void mutate(std::vector<std::uint8_t>& m, const Scan& s, Rng& rng) {
  const std::size_t psz = s.big ? 8 : 4;
  switch (rng.below(12)) {
    case 0: {  // truncation (keep at least one byte)
      m.resize(1 + static_cast<std::size_t>(rng.below(m.size() - 1)));
      break;
    }
    case 1: {  // raw byte flips
      const std::uint64_t flips = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < flips; ++i) {
        m[static_cast<std::size_t>(rng.below(m.size()))] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      break;
    }
    case 2: {  // entry type flip
      if (s.entries.empty()) break;
      const EntryLoc& e = s.entries[rng.below(s.entries.size())];
      const std::uint16_t types[] = {0, 1, 2, 3, 4, 5, 7, 11, 12, 16, 17, 0xFFFF};
      wr(m, e.off + 2, 2, s.be, types[rng.below(std::size(types))]);
      break;
    }
    case 3: {  // entry count rewrite
      if (s.entries.empty()) break;
      const EntryLoc& e = s.entries[rng.below(s.entries.size())];
      const std::uint64_t counts[] = {0,      1,          2,
                                      5,      0xFFFF,     0xFFFFFFFFull,
                                      m.size(), 0x7FFFFFFFFFFFFFFFull};
      wr(m, e.off + 4, s.big ? 8 : 4, s.be, counts[rng.below(std::size(counts))]);
      break;
    }
    case 4: {  // entry value / external offset rewrite
      if (s.entries.empty()) break;
      const EntryLoc& e = s.entries[rng.below(s.entries.size())];
      const std::uint64_t sz = m.size();
      const std::uint64_t values[] = {0,      1,      7,         sz - 1,
                                      sz,     sz + 4096, 0xFFFFFFF0ull,
                                      0xFFFFFFFFFFFFF0ull};
      wr(m, e.off + (s.big ? 12 : 8), psz, s.be,
         values[rng.below(std::size(values))]);
      break;
    }
    case 5: {  // next-IFD graft: cycles, self-loops, garbage targets
      if (s.link_offsets.empty()) break;
      const std::uint64_t link = s.link_offsets[rng.below(s.link_offsets.size())];
      std::uint64_t target = 0;
      switch (rng.below(4)) {
        case 0:
          target = s.ifd_offsets.empty() ? 8 : s.ifd_offsets.front();
          break;  // back-edge to first IFD
        case 1:
          target = s.ifd_offsets.empty() ? 8 : s.ifd_offsets.back();
          break;  // self-loop on last IFD
        case 2:
          target = s.entries.empty() ? 1 : s.entries.front().off;
          break;  // "IFD" aimed at an entry table
        default:
          target = 1;  // odd offset inside the header
          break;
      }
      wr(m, link, psz, s.be, target);
      break;
    }
    case 6: {  // dimension bomb on width/height/bits
      for (const EntryLoc& e : s.entries) {
        if (e.tag != 256 && e.tag != 257 && e.tag != 258) continue;
        const std::uint64_t bombs[] = {0, 0x10000, 0xFFFFFFFFull};
        wr(m, e.off + (s.big ? 12 : 8), psz, s.be,
           bombs[rng.below(std::size(bombs))]);
        if (rng.below(2) == 0) break;  // sometimes bomb several tags
      }
      break;
    }
    case 7: {  // header corruption
      const std::size_t span = s.big ? 16 : 8;
      const std::uint64_t off = rng.below(span);
      m[static_cast<std::size_t>(off)] =
          static_cast<std::uint8_t>(rng.next() & 0xFF);
      break;
    }
    // --- codec-aware mutations: drive the LZW/Deflate/predictor decode
    // paths into their error branches instead of the IFD parser's.
    case 8: {  // compression tag rewrite: decode a stream with the wrong
               // codec (raw bytes as LZW codes, LZW as zlib, ...)
      for (const EntryLoc& e : s.entries) {
        if (e.tag != 259) continue;
        const std::uint64_t codecs[] = {1, 5, 8, 32773, 32946, 6, 0xDEAD};
        wr(m, e.off + (s.big ? 12 : 8), psz, s.be,
           codecs[rng.below(std::size(codecs))]);
      }
      break;
    }
    case 9: {  // predictor tag rewrite: undo differencing that never
               // happened, or demand an unsupported predictor
      for (const EntryLoc& e : s.entries) {
        if (e.tag != 317) continue;
        const std::uint64_t preds[] = {0, 1, 2, 3, 34892, 0xFFFF};
        wr(m, e.off + (s.big ? 12 : 8), psz, s.be,
           preds[rng.below(std::size(preds))]);
      }
      break;
    }
    case 10: {  // segment-data corruption: flip a burst inside the pixel/
                // code-stream region (between header and first IFD) so
                // compressed streams truncate or desync mid-decode
      const std::uint64_t lo = s.big ? 16 : 8;
      const std::uint64_t hi =
          s.ifd_offsets.empty() ? m.size() : s.ifd_offsets.front();
      if (hi <= lo) break;
      const std::uint64_t burst = 1 + rng.below(16);
      const std::uint64_t start = lo + rng.below(hi - lo);
      for (std::uint64_t i = 0; i < burst && start + i < hi; ++i) {
        m[static_cast<std::size_t>(start + i)] =
            static_cast<std::uint8_t>(rng.next() & 0xFF);
      }
      break;
    }
    default: {  // byte-count bomb on Strip/TileByteCounts (279/325):
                // declared compressed size wildly off the actual stream
      for (const EntryLoc& e : s.entries) {
        if (e.tag != 279 && e.tag != 325) continue;
        const std::uint64_t bombs[] = {0, 1, 3, m.size(),
                                       0xFFFFFFF0ull, 0x7FFFFFFFFFFFFFFFull};
        wr(m, e.off + (s.big ? 12 : 8), psz, s.be,
           bombs[rng.below(std::size(bombs))]);
        if (rng.below(2) == 0) break;  // sometimes bomb only one tag
      }
      break;
    }
  }
}

// --- invariant check ----------------------------------------------------

void note_failure(FuzzStats& st, std::string msg) {
  if (st.failures.size() < 20) st.failures.push_back(std::move(msg));
}

/// Runs one byte buffer through both readers. Returns true if the
/// materializing reader decoded it fully.
bool check_one(const std::string& label, const std::vector<std::uint8_t>& bytes,
               const TiffReadLimits& limits, FuzzStats& st) {
  bool decoded = false;
  try {
    const TiffStack stack = read_tiff_bytes(bytes, limits);
    decoded = !stack.pages.empty();
    if (!decoded) note_failure(st, label + ": decoded to an empty stack");
  } catch (const TiffError& e) {
    const int kind = static_cast<int>(e.kind());
    if (kind < 0 || kind >= 6) {
      note_failure(st, label + ": TiffError with out-of-range kind");
    } else {
      ++st.kind_counts[kind];
    }
    if (std::strstr(e.what(), "tiff:") == nullptr) {
      note_failure(st, label + ": what() missing taxonomy prefix: " + e.what());
    }
  } catch (const std::exception& e) {
    note_failure(st, label + ": non-TiffError escaped read_tiff_bytes: " +
                         std::string(e.what()));
  } catch (...) {
    note_failure(st, label + ": non-std exception escaped read_tiff_bytes");
  }
  // The streaming reader must uphold the identical contract, including
  // during on-demand page decode.
  try {
    TiffOpenOptions opts;
    opts.limits = limits;
    const TiffVolumeReader reader = TiffVolumeReader::open(bytes, opts);
    for (std::int64_t p = 0; p < reader.pages(); ++p) {
      try {
        (void)reader.read_page(p);
      } catch (const TiffError&) {
      }
    }
  } catch (const TiffError&) {
  } catch (const std::exception& e) {
    note_failure(st, label + ": non-TiffError escaped TiffVolumeReader: " +
                         std::string(e.what()));
  } catch (...) {
    note_failure(st, label + ": non-std exception escaped TiffVolumeReader");
  }
  return decoded;
}

}  // namespace

FuzzStats run_fuzz(std::uint64_t seed, std::size_t mutants_per_entry,
                   const TiffReadLimits& limits) {
  FuzzStats st;
  const std::vector<CorpusEntry> corpus = build_corpus();
  for (const CorpusEntry& entry : corpus) {
    // The pristine entry must decode — this pins writer/reader agreement
    // and guarantees the fuzzer starts from valid structure.
    if (!check_one(entry.name + "[pristine]", entry.bytes, limits, st)) {
      note_failure(st, entry.name + ": pristine corpus entry failed to decode");
    }
    const Scan scan = scan_structure(entry.bytes);
    for (std::size_t i = 0; i < mutants_per_entry; ++i) {
      // Seed folding keeps every mutant independent of corpus order.
      Rng rng(seed ^ (0x51ED270B1ull * (st.mutants + 1)));
      std::vector<std::uint8_t> mutant = entry.bytes;
      mutate(mutant, scan, rng);
      ++st.mutants;
      if (check_one(entry.name + "[" + std::to_string(i) + "]", mutant, limits,
                    st)) {
        ++st.decoded;
      } else {
        ++st.rejected;
      }
    }
  }
  return st;
}

}  // namespace zenesis::io::fuzz
