// Fault-injection suite for zenesis::net (ISSUE-9 satellite): slow-loris
// partial frames, abrupt disconnects with work in flight, oversized and
// zero-length length fields, cancel races (queued / completed / unknown),
// half-closed sockets, deadline expiry, and tenant-quota exhaustion plus
// recovery. Each test pins one clause of the robustness contract in
// server.hpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "zenesis/fibsem/synth.hpp"
#include "zenesis/net/client.hpp"
#include "zenesis/net/frame.hpp"
#include "zenesis/net/server.hpp"
#include "zenesis/serve/service.hpp"

namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zn = zenesis::net;
namespace zs = zenesis::serve;

using namespace std::chrono_literals;

namespace {

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

zi::AnyImage make_image(std::int64_t size, std::uint64_t seed) {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = seed;
  return zi::AnyImage(zf::generate_slice(cfg, 0).raw);
}

/// Spins until `pred` holds or `timeout` passes; returns pred().
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Drains the connection until EOF; returns the frames seen on the way.
std::vector<zn::ServerMessage> drain_to_eof(zn::Client& client,
                                            std::chrono::milliseconds timeout) {
  std::vector<zn::ServerMessage> seen;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!client.peer_closed() && !client.decode_failed() &&
         std::chrono::steady_clock::now() < deadline) {
    auto msg = client.recv(50ms);
    if (msg) seen.push_back(std::move(*msg));
  }
  return seen;
}

}  // namespace

TEST(NetFaults, SlowLorisTimesOutWithoutHurtingHealthyClients) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  cfg.partial_frame_timeout = 100ms;
  zn::Server server(service, cfg);

  // The loris: dribbles half a frame header and then stalls.
  auto [loris, loris_fd] = zn::Client::loopback_pair();
  server.adopt(loris_fd);
  const std::vector<std::uint8_t> hello = zn::encode_hello(1);
  ASSERT_TRUE(loris.send_bytes(hello.data(), 9));  // 9 of 20 header bytes

  // A healthy client on the same server keeps getting served meanwhile.
  auto [good, good_fd] = zn::Client::loopback_pair();
  server.adopt(good_fd);
  ASSERT_TRUE(good.hello(1));
  const std::uint64_t rid = good.submit_slice(make_image(24, 3), kPrompt);
  ASSERT_NE(rid, 0u);
  const auto resp = good.wait_for(rid);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, zn::FrameType::kResponse);

  // The loris gets an Error{Timeout} frame and a close, and is counted.
  ASSERT_TRUE(wait_until([&] { return server.stats().connections_timed_out > 0; }));
  const auto seen = drain_to_eof(loris, 3000ms);
  EXPECT_TRUE(loris.peer_closed());
  EXPECT_FALSE(loris.decode_failed());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, zn::FrameType::kError);
  EXPECT_EQ(seen[0].error.code, zenesis::core::ErrorCode::kIo);  // kTimeout

  const zn::NetStats ns = server.stats();
  EXPECT_EQ(ns.connections_timed_out, 1u);
  ASSERT_TRUE(wait_until([&] { return server.stats().connections_active == 1; }));
}

TEST(NetFaults, AbruptDisconnectFreesQueuedAndInflightSlots) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  cfg.start_bridge_paused = true;
  zn::Server server(service, cfg);

  {
    auto [client, server_fd] = zn::Client::loopback_pair();
    server.adopt(server_fd);
    ASSERT_TRUE(client.hello(1));
    for (int i = 0; i < 3; ++i) {
      ASSERT_NE(client.submit_slice(make_image(24, 5), kPrompt), 0u);
    }
    ASSERT_TRUE(wait_until([&] { return server.backlog() == 3; }));
    // Vanish with everything still queued. A full close looks like a
    // half-close until the server tries to write — the contract is that
    // the failed flush tears the connection down and frees every slot,
    // not that the close is detected instantly.
  }
  server.resume_bridge();
  ASSERT_TRUE(wait_until([&] {
    return server.backlog() == 0 && server.inflight() == 0 &&
           server.stats().connections_active == 0;
  }));

  // No leaked slots, and the server still serves the next client.
  auto [client2, server_fd2] = zn::Client::loopback_pair();
  server.adopt(server_fd2);
  ASSERT_TRUE(client2.hello(1));
  const std::uint64_t rid = client2.submit_slice(make_image(24, 5), kPrompt);
  const auto resp = client2.wait_for(rid);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, zn::FrameType::kResponse);
}

TEST(NetFaults, OversizedPayloadLengthIsRefusedBeforeAllocation) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  cfg.limits.max_frame_bytes = 1u << 20;
  zn::Server server(service, cfg);

  auto [client, server_fd] = zn::Client::loopback_pair(cfg.limits);
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));

  // A header whose payload_len (0xFFFFFFFF) dwarfs max_frame_bytes. The
  // decoder must refuse it from the header alone — no 4 GiB buffer.
  std::vector<std::uint8_t> header = zn::encode_ping({});
  header.resize(zn::kHeaderBytes);
  header[16] = header[17] = header[18] = header[19] = 0xFF;
  ASSERT_TRUE(client.send_bytes(header));
  client.shutdown_write();

  const auto seen = drain_to_eof(client, 3000ms);
  EXPECT_TRUE(client.peer_closed());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, zn::FrameType::kError);
  EXPECT_EQ(seen[0].error.code, zenesis::core::ErrorCode::kLimitExceeded);
  EXPECT_GT(server.stats().protocol_errors, 0u);
}

TEST(NetFaults, ZeroLengthPayloadOnRequestFrameIsACleanError) {
  zs::SegmentService service;
  zn::Server server(service, {});

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));

  // A kSlice frame with payload_len = 0: framing is valid, the payload is
  // not. Must produce an Error close, never a crash or hang.
  std::vector<std::uint8_t> frame =
      zn::encode_slice_request(1, make_image(8, 1), kPrompt, {});
  frame.resize(zn::kHeaderBytes);
  frame[16] = frame[17] = frame[18] = frame[19] = 0;
  ASSERT_TRUE(client.send_bytes(frame));
  client.shutdown_write();

  const auto seen = drain_to_eof(client, 3000ms);
  EXPECT_TRUE(client.peer_closed());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].type, zn::FrameType::kError);
}

TEST(NetFaults, CancelOfQueuedRequestYieldsExactlyOneRejectedFrame) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  cfg.start_bridge_paused = true;
  zn::Server server(service, cfg);

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));
  const std::uint64_t rid = client.submit_slice(make_image(24, 7), kPrompt);
  ASSERT_TRUE(wait_until([&] { return server.backlog() == 1; }));
  ASSERT_TRUE(client.cancel(rid));
  // The cancel frame races the bridge: hold the bridge until the event
  // loop has actually decoded it, so the queued-cancel path is what runs.
  ASSERT_TRUE(wait_until([&] { return server.stats().cancels_received == 1; }));
  server.resume_bridge();

  const auto resp = client.wait_for(rid);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, zn::FrameType::kRejected);
  EXPECT_EQ(resp->reject, zn::WireReject::kCancelled);

  // Exactly one terminal frame: nothing further for this request.
  EXPECT_FALSE(client.recv(200ms).has_value());
  const zn::NetStats ns = server.stats();
  EXPECT_EQ(ns.rejected_sent, 1u);
  EXPECT_EQ(ns.responses_sent, 0u);
  EXPECT_EQ(ns.cancels_received, 1u);
}

TEST(NetFaults, LateAndUnknownCancelsAreIdempotentNoOps) {
  zs::SegmentService service;
  zn::Server server(service, {});

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));

  const std::uint64_t rid = client.submit_slice(make_image(24, 9), kPrompt);
  const auto resp = client.wait_for(rid);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, zn::FrameType::kResponse);

  // Cancel after completion + cancel of a never-seen id: both must be
  // swallowed without a frame, an error, or a dropped connection.
  ASSERT_TRUE(client.cancel(rid));
  ASSERT_TRUE(client.cancel(0xDEADBEEFull));
  EXPECT_FALSE(client.recv(200ms).has_value());
  EXPECT_TRUE(client.ping({9, 9, 9}));

  const zn::NetStats ns = server.stats();
  EXPECT_EQ(ns.cancels_received, 2u);
  EXPECT_EQ(ns.responses_sent, 1u);
  EXPECT_EQ(ns.errors_sent, 0u);
  EXPECT_EQ(ns.protocol_errors, 0u);
}

TEST(NetFaults, HalfClosedSocketStillReceivesItsResponses) {
  zs::SegmentService service;
  zn::Server server(service, {});

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));
  const std::uint64_t rid1 = client.submit_slice(make_image(24, 11), kPrompt);
  const std::uint64_t rid2 = client.submit_slice(make_image(24, 13), kPrompt);
  client.shutdown_write();  // EOF with two requests outstanding

  const auto r1 = client.wait_for(rid1);
  const auto r2 = client.wait_for(rid2);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->type, zn::FrameType::kResponse);
  EXPECT_EQ(r2->type, zn::FrameType::kResponse);

  // After the owed responses the server closes its side too.
  drain_to_eof(client, 3000ms);
  EXPECT_TRUE(client.peer_closed());
  EXPECT_FALSE(client.decode_failed());
}

TEST(NetFaults, ExpiredDeadlineComesBackAsRejectedFrame) {
  zs::ServiceConfig scfg;
  scfg.start_paused = true;  // deadlines expire while dispatch is held
  zs::SegmentService service(scfg);
  zn::Server server(service, {});

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));
  zn::WireRequestOptions opts;
  opts.deadline_ms = 30;
  const std::uint64_t rid =
      client.submit_slice(make_image(24, 17), kPrompt, opts);
  ASSERT_NE(rid, 0u);
  ASSERT_TRUE(wait_until([&] { return server.inflight() == 1; }));
  std::this_thread::sleep_for(60ms);
  service.resume();

  const auto resp = client.wait_for(rid);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, zn::FrameType::kRejected);
  EXPECT_EQ(resp->reject, zn::WireReject::kDeadlineExpired);
}

TEST(NetFaults, TenantQuotaExhaustsAndRecovers) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  cfg.tenants[7] = {/*weight=*/1, /*max_queued=*/2};
  cfg.start_bridge_paused = true;
  zn::Server server(service, cfg);

  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(7));
  const std::uint64_t r1 = client.submit_slice(make_image(24, 19), kPrompt);
  const std::uint64_t r2 = client.submit_slice(make_image(24, 23), kPrompt);
  const std::uint64_t r3 = client.submit_slice(make_image(24, 29), kPrompt);

  // The third request breaches the quota: immediate structured shed, and
  // the service never saw it.
  const auto shed = client.wait_for(r3, 5000ms);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->type, zn::FrameType::kRejected);
  EXPECT_EQ(shed->reject, zn::WireReject::kTenantQuota);
  EXPECT_EQ(server.backlog(), 2u);

  server.resume_bridge();
  const auto resp1 = client.wait_for(r1);
  const auto resp2 = client.wait_for(r2);
  ASSERT_TRUE(resp1.has_value());
  ASSERT_TRUE(resp2.has_value());
  EXPECT_EQ(resp1->type, zn::FrameType::kResponse);
  EXPECT_EQ(resp2->type, zn::FrameType::kResponse);

  // Quota slots are freed on completion: the tenant is healthy again.
  const std::uint64_t r4 = client.submit_slice(make_image(24, 19), kPrompt);
  const auto resp4 = client.wait_for(r4);
  ASSERT_TRUE(resp4.has_value());
  EXPECT_EQ(resp4->type, zn::FrameType::kResponse);

  const zn::NetStats ns = server.stats();
  const auto it = ns.tenants.find(7);
  ASSERT_NE(it, ns.tenants.end());
  EXPECT_EQ(it->second.shed, 1u);
  EXPECT_EQ(it->second.completed, 3u);  // r1, r2, r4 — the shed never queued
  EXPECT_EQ(ns.shed_tenant_quota, 1u);
  EXPECT_EQ(service.stats().rejected_queue_full, 0u);
}
