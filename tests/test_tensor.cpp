// Unit tests for the Tensor container.
#include <gtest/gtest.h>

#include <stdexcept>

#include "zenesis/tensor/tensor.hpp"

namespace zt = zenesis::tensor;

TEST(Tensor, DefaultIsEmpty) {
  zt::Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstructionZeroInitializes) {
  zt::Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ValueConstructionRoundTrips) {
  zt::Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ValueCountMismatchThrows) {
  EXPECT_THROW(zt::Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(zt::Tensor(zt::Shape{-1, 4}), std::invalid_argument);
}

TEST(Tensor, Rank3And4Indexing) {
  zt::Tensor t3({2, 3, 4});
  t3.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t3.at(1, 2, 3), 7.0f);
  EXPECT_EQ(t3.flat()[1 * 12 + 2 * 4 + 3], 7.0f);

  zt::Tensor t4({2, 2, 2, 2});
  t4.at(1, 0, 1, 0) = 3.0f;
  EXPECT_EQ(t4.flat()[8 + 0 + 2 + 0], 3.0f);
}

TEST(Tensor, RowPointerMatchesIndexing) {
  zt::Tensor t({3, 4});
  t.at(2, 1) = 5.5f;
  EXPECT_EQ(t.row(2)[1], 5.5f);
}

TEST(Tensor, ReshapePreservesData) {
  zt::Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  zt::Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_EQ(r.at(0, 1), 2.0f);
}

TEST(Tensor, ReshapeWrongCountThrows) {
  zt::Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FillSetsEveryElement) {
  zt::Tensor t({5, 5});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, ZeroSizedDimensionAllowed) {
  zt::Tensor t({0, 7});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}
