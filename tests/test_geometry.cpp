// Tests for Box/Point geometry (IoU, clipping, union, containment).
#include <gtest/gtest.h>

#include "zenesis/image/geometry.hpp"

namespace zi = zenesis::image;

TEST(Box, AreaAndEmpty) {
  EXPECT_EQ((zi::Box{0, 0, 4, 5}).area(), 20);
  EXPECT_TRUE((zi::Box{}).empty());
  EXPECT_TRUE((zi::Box{1, 1, 0, 5}).empty());
  EXPECT_FALSE((zi::Box{1, 1, 1, 1}).empty());
}

TEST(Box, CenterAndContains) {
  zi::Box b{2, 2, 4, 4};
  EXPECT_EQ(b.center(), (zi::Point{4, 4}));
  EXPECT_TRUE(b.contains({2, 2}));
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_FALSE(b.contains({6, 6}));  // exclusive right/bottom
  EXPECT_FALSE(b.contains({1, 3}));
}

TEST(Box, IntersectOverlapping) {
  zi::Box a{0, 0, 4, 4}, b{2, 2, 4, 4};
  const zi::Box i = a.intersect(b);
  EXPECT_EQ(i, (zi::Box{2, 2, 2, 2}));
}

TEST(Box, IntersectDisjointIsEmpty) {
  zi::Box a{0, 0, 2, 2}, b{5, 5, 2, 2};
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Box, UniteCoversBoth) {
  zi::Box a{0, 0, 2, 2}, b{5, 5, 2, 2};
  const zi::Box u = a.unite(b);
  EXPECT_EQ(u, (zi::Box{0, 0, 7, 7}));
  EXPECT_EQ(a.unite(zi::Box{}), a);
  EXPECT_EQ((zi::Box{}).unite(b), b);
}

TEST(Box, IouIdentityAndDisjoint) {
  zi::Box a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(a.iou(a), 1.0);
  EXPECT_DOUBLE_EQ(a.iou({10, 10, 4, 4}), 0.0);
}

TEST(Box, IouHalfOverlap) {
  zi::Box a{0, 0, 2, 2}, b{1, 0, 2, 2};
  // intersection 2, union 6.
  EXPECT_NEAR(a.iou(b), 2.0 / 6.0, 1e-12);
}

TEST(Box, ClippedToImage) {
  zi::Box b{-5, -5, 20, 20};
  EXPECT_EQ(b.clipped(10, 8), (zi::Box{0, 0, 10, 8}));
  EXPECT_TRUE((zi::Box{12, 0, 4, 4}).clipped(10, 10).empty());
}

TEST(Box, ExpandedSymmetric) {
  zi::Box b{4, 4, 2, 2};
  EXPECT_EQ(b.expanded(2), (zi::Box{2, 2, 6, 6}));
}

TEST(ScoredBox, Equality) {
  zi::ScoredBox a{{1, 2, 3, 4}, 0.5};
  zi::ScoredBox b{{1, 2, 3, 4}, 0.5};
  EXPECT_EQ(a, b);
}
