// Protocol fuzz replay for zenesis::net — see tests/net_fuzz_harness.hpp
// for the contract the mutants enforce. The same harness is replayed by
// tools/ci.sh under TSAN/ASAN/UBSan.

#include <gtest/gtest.h>

#include <chrono>

#include "tests/net_fuzz_harness.hpp"
#include "zenesis/net/client.hpp"
#include "zenesis/net/server.hpp"
#include "zenesis/serve/service.hpp"

namespace zn = zenesis::net;
namespace zs = zenesis::serve;
using namespace std::chrono_literals;

namespace {

/// Tight limits so length-bomb mutants are refused before allocation and
/// thousands of conversations stay cheap even under sanitizers.
zn::NetLimits fuzz_limits() {
  zn::NetLimits limits;
  limits.max_frame_bytes = 1u << 20;  // 1 MiB
  limits.max_pixels = 64 * 64;
  limits.max_prompt_bytes = 256;
  limits.max_path_bytes = 256;
  limits.max_ping_bytes = 64;
  return limits;
}

zn::ServerConfig fuzz_config() {
  zn::ServerConfig cfg;
  cfg.limits = fuzz_limits();
  // Mutants that desync the stream leave half a frame buffered; a short
  // partial-frame timeout turns those into bounded kTimeout closes
  // instead of watchdog hangs.
  cfg.partial_frame_timeout = 300ms;
  return cfg;
}

}  // namespace

TEST(NetFuzz, MutantsDecodeOrFailCleanly) {
  zs::SegmentService service;
  zn::Server server(service, fuzz_config());

  const std::size_t kMutantsPerEntry = 256;  // x8 corpus entries = 2048
  const zn::fuzz::FuzzStats stats = zn::fuzz::run_fuzz(
      server, fuzz_limits(), /*seed=*/0x5EED5EEDull, kMutantsPerEntry,
      /*watchdog=*/10000ms);

  for (const std::string& f : stats.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(stats.failures.empty());
  EXPECT_GE(stats.mutants, 2000u);
  // The pristine corpus entries alone guarantee real traffic; mutants add
  // more. If these are zero the harness is not actually talking to the
  // server.
  EXPECT_GT(stats.responses, 0u);
  EXPECT_GT(stats.errors, 0u);
  EXPECT_GT(stats.acks_pongs, 0u);
  EXPECT_GT(stats.clean_eof, 0u);

  // After the storm the server must still serve a well-formed client.
  auto [client, server_fd] = zn::Client::loopback_pair(fuzz_limits());
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));
  ASSERT_TRUE(client.ping({1, 2, 3}));

  // And the queue must be fully drained: every decoded request got its
  // terminal frame, nothing leaked a slot.
  server.stop();
  EXPECT_EQ(server.backlog(), 0u);
  EXPECT_EQ(server.inflight(), 0u);

  const zn::NetStats ns = server.stats();
  RecordProperty("mutants", static_cast<int>(stats.mutants));
  RecordProperty("protocol_errors", static_cast<int>(ns.protocol_errors));
  // Mutant streams necessarily trip protocol errors.
  EXPECT_GT(ns.protocol_errors, 0u);
}

TEST(NetFuzz, SameSeedSameOutcome) {
  const auto run_once = [] {
    zs::SegmentService service;
    zn::Server server(service, fuzz_config());
    return zn::fuzz::run_fuzz(server, fuzz_limits(), /*seed=*/42,
                              /*mutants_per_entry=*/24, /*watchdog=*/10000ms);
  };
  const zn::fuzz::FuzzStats a = run_once();
  const zn::fuzz::FuzzStats b = run_once();
  EXPECT_TRUE(a.failures.empty());
  EXPECT_TRUE(b.failures.empty());
  EXPECT_EQ(a.mutants, b.mutants);
  // Byte-stream determinism: the same seed replays the same mutants, so
  // per-frame-deterministic tallies must match exactly. Acks/pongs and
  // terminal-frame *totals* are functions of the byte stream alone; only
  // the Response/Rejected split can drift (a cancel racing an in-flight
  // request), so those are compared summed.
  EXPECT_EQ(a.acks_pongs, b.acks_pongs);
  EXPECT_EQ(a.responses + a.rejected + a.errors,
            b.responses + b.rejected + b.errors);
}
