// Engineered feature-channel tests: each channel must respond to the
// morphology it encodes.
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/models/features.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zm = zenesis::models;
namespace zi = zenesis::image;

namespace {

/// Horizontal bright stripe (needle-like) on a flat background.
zi::ImageF32 stripe_image() {
  zi::ImageF32 img(64, 64, 1);
  img.fill(0.3f);
  for (std::int64_t x = 8; x < 56; ++x) {
    img.at(x, 31) = 0.9f;
    img.at(x, 32) = 0.9f;
  }
  return img;
}

/// Isotropic blob.
zi::ImageF32 blob_image() {
  zi::ImageF32 img(64, 64, 1);
  img.fill(0.3f);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      const double d2 = (x - 32.0) * (x - 32.0) + (y - 32.0) * (y - 32.0);
      if (d2 < 100.0) img.at(x, y) = 0.9f;
    }
  }
  return img;
}

}  // namespace

TEST(Features, IntensityTracksBrightness) {
  const auto maps = zm::compute_features(blob_image());
  EXPECT_GT(maps.channels[zm::kIntensity].at(32, 32),
            maps.channels[zm::kIntensity].at(4, 4) + 0.3f);
}

TEST(Features, RankIsMonotoneInIntensity) {
  const auto maps = zm::compute_features(blob_image());
  EXPECT_GT(maps.channels[zm::kRank].at(32, 32),
            maps.channels[zm::kRank].at(4, 4));
}

TEST(Features, EdgeRespondsAtBoundaries) {
  const auto maps = zm::compute_features(blob_image());
  // Boundary of the blob (radius 10 around center).
  EXPECT_GT(maps.channels[zm::kEdge].at(42, 32),
            maps.channels[zm::kEdge].at(4, 4) + 0.1f);
}

TEST(Features, CoherenceHighOnStripeLowOnBlobCenter) {
  const auto stripe = zm::compute_features(stripe_image());
  const auto blob = zm::compute_features(blob_image());
  // The stripe's flanks have strongly oriented gradients.
  EXPECT_GT(stripe.channels[zm::kCoherence].at(32, 31), 0.5f);
  // A flat noiseless background has no orientation signal either way; the
  // discriminative comparison is stripe flank vs blob *boundary* (curved).
  double blob_boundary = 0.0;
  int n = 0;
  for (int a = 0; a < 360; a += 15) {
    const double rad = a * 3.14159265 / 180.0;
    const auto x = static_cast<std::int64_t>(32 + 10 * std::cos(rad));
    const auto y = static_cast<std::int64_t>(32 + 10 * std::sin(rad));
    blob_boundary += blob.channels[zm::kCoherence].at(x, y);
    ++n;
  }
  blob_boundary /= n;
  EXPECT_GT(stripe.channels[zm::kCoherence].at(32, 31), blob_boundary);
}

TEST(Features, TextureHighInNoisyRegion) {
  zenesis::parallel::Rng rng(1);
  zi::ImageF32 img(64, 64, 1);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      img.at(x, y) =
          x < 32 ? 0.5f : 0.5f + static_cast<float>(rng.normal(0.0, 0.25));
    }
  }
  const auto maps = zm::compute_features(img, 0.8f);
  EXPECT_GT(maps.channels[zm::kTexture].at(48, 32),
            maps.channels[zm::kTexture].at(8, 32) + 0.1f);
}

TEST(Features, AllChannelsInUnitRange) {
  const auto maps = zm::compute_features(stripe_image());
  for (const auto& ch : maps.channels) {
    for (float v : ch.pixels()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f + 1e-4f);
    }
  }
}

TEST(PatchFeatures, GridGeometry) {
  const auto maps = zm::compute_features(stripe_image());
  std::int64_t gh = 0, gw = 0;
  const auto t = zm::patch_features(maps, 8, &gh, &gw);
  EXPECT_EQ(gh, 8);
  EXPECT_EQ(gw, 8);
  EXPECT_EQ(t.dim(0), 64);
  EXPECT_EQ(t.dim(1), zm::kFeatureChannels);
}

TEST(PatchFeatures, PartialTrailingPatchAveraged) {
  zi::ImageF32 img(10, 10, 1);
  img.fill(0.5f);
  const auto maps = zm::compute_features(img);
  std::int64_t gh = 0, gw = 0;
  const auto t = zm::patch_features(maps, 8, &gh, &gw);
  EXPECT_EQ(gh, 2);
  EXPECT_EQ(gw, 2);
  // Constant image → every patch identical regardless of partial size.
  EXPECT_NEAR(t.at(0, zm::kIntensity), t.at(3, zm::kIntensity), 1e-5f);
}

TEST(PatchFeatures, PatchMeanMatchesPixelMean) {
  const auto maps = zm::compute_features(blob_image());
  std::int64_t gh = 0, gw = 0;
  const auto t = zm::patch_features(maps, 64, &gh, &gw);  // one giant patch
  double mean = 0.0;
  for (float v : maps.channels[zm::kIntensity].pixels()) mean += v;
  mean /= 4096.0;
  EXPECT_NEAR(t.at(0, zm::kIntensity), mean, 1e-4);
}

TEST(Features, RejectsMultichannel) {
  EXPECT_THROW(zm::compute_features(zi::ImageF32(4, 4, 3)),
               std::invalid_argument);
}
