// Contention stress for the cache hierarchy, designed to run under TSAN
// and ASAN (tools/ci.sh stages 3–4): mixed get/put/erase workloads at 8,
// 16 and 64 threads, a concurrent sampler asserting the byte-budget
// invariant mid-mutation, racing FeatureCache encodes, and the
// determinism sweep — masks must be byte-identical with caching off,
// single-shard, sharded, disk-tiered, and with the mask cache on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "zenesis/cache/sharded_lru.hpp"
#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/models/feature_cache.hpp"

namespace {

using namespace zenesis;
using cache::Key128;
using IntCache = cache::ShardedLruCache<int>;

namespace fs = std::filesystem;

Key128 key(std::uint64_t n) {
  return Key128{n, n * 0x9e3779b97f4a7c15ull + 1};
}

/// Mixed-operation stress: every thread hammers a shared cache with a
/// deterministic per-thread RNG; the cache must stay within budget and
/// never serve a value that was not put for that key.
void run_mixed_stress(std::size_t threads, std::size_t shards,
                      int ops_per_thread) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = shards;
  cfg.capacity = 64;
  cfg.byte_budget = 16 * 1024;
  IntCache cache(cfg);
  constexpr std::uint64_t kKeySpace = 256;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> value_mismatches{0};
  // Concurrent invariant sampler: the budget bound must hold at every
  // instant, not just at quiescence.
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto s = cache.stats();
      if (s.resident_bytes > cfg.byte_budget) {
        value_mismatches.fetch_add(1'000'000, std::memory_order_relaxed);
        return;
      }
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0x5eed + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t n = rng() % kKeySpace;
        switch (rng() % 4) {
          case 0:
          case 1: {
            // Values encode their key, so any cross-key leak is visible.
            const auto hit = cache.get(key(n));
            if (hit != nullptr && static_cast<std::uint64_t>(*hit) != n) {
              value_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2:
            (void)cache.put(key(n), std::make_shared<const int>(
                                        static_cast<int>(n)),
                            1 + n % 512);
            break;
          case 3:
            (void)cache.erase(key(n));
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(value_mismatches.load(), 0u);
  const auto s = cache.stats();
  EXPECT_LE(s.resident_bytes, cfg.byte_budget);
  EXPECT_LE(s.resident_entries, cfg.capacity + cache.shard_count())
      << "per-shard ceil split may exceed capacity by at most one per shard";
}

TEST(CacheStress, MixedOps8Threads) { run_mixed_stress(8, 8, 3000); }
TEST(CacheStress, MixedOps16Threads) { run_mixed_stress(16, 8, 1500); }
TEST(CacheStress, MixedOps64Threads) { run_mixed_stress(64, 16, 400); }
TEST(CacheStress, MixedOpsSingleShard) { run_mixed_stress(16, 1, 1000); }

TEST(CacheStress, ConcurrentSameKeyPutsConvergeToOneValue) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 4;
  IntCache cache(cfg);
  const Key128 k = key(42);
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> bad_values{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        (void)cache.put(k, std::make_shared<const int>(t), 8);
        const auto hit = cache.get(k);
        // Whatever is resident must be some writer's value, intact.
        if (hit != nullptr && (*hit < 0 || *hit >= 8)) {
          bad_values.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad_values.load(), 0u);
  const auto s = cache.stats();
  EXPECT_EQ(s.resident_entries, 1u);
  EXPECT_EQ(s.resident_bytes, 8u);
}

TEST(CacheStress, ConcurrentFeatureCacheEncodesShareOneEntryPerImage) {
  models::FeatureCacheConfig cfg;
  cfg.capacity = 16;
  cfg.shards = 4;
  models::FeatureCache cache(cfg);
  const models::VisionBackbone backbone;
  constexpr int kImages = 3;
  std::vector<image::ImageF32> images;
  for (int i = 0; i < kImages; ++i) {
    image::ImageF32 img(24, 24, 1);
    img.fill(0.1f * static_cast<float>(i + 1));
    images.push_back(std::move(img));
  }

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> divergences{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      for (int i = 0; i < 12; ++i) {
        const auto& img = images[rng() % kImages];
        const auto enc = cache.encode(img, backbone);
        // Every thread must observe the same encoding for an image.
        const auto again = cache.encode(img, backbone);
        const auto a = enc->enc.tokens.flat();
        const auto b = again->enc.tokens.flat();
        if (a.size() != b.size()) {
          divergences.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t p = 0; p < a.size(); ++p) {
          if (a[p] != b[p]) {
            divergences.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(divergences.load(), 0u);
  const auto s = cache.stats();
  // Concurrent cold misses may duplicate compute, but the steady state is
  // one entry per distinct image.
  EXPECT_EQ(s.resident_bytes > 0, true);
  EXPECT_GT(s.hits, 0u);
}

// --- Determinism sweep: every cache topology, byte-identical masks ---

class DeterminismSweep : public ::testing::Test {
 protected:
  static void expect_equal(const core::VolumeResult& a,
                           const core::VolumeResult& b, const char* what) {
    ASSERT_EQ(a.slices.size(), b.slices.size()) << what;
    ASSERT_EQ(a.replaced, b.replaced) << what;
    for (std::size_t i = 0; i < a.slices.size(); ++i) {
      const auto pa = a.slices[i].mask.pixels();
      const auto pb = b.slices[i].mask.pixels();
      ASSERT_EQ(pa.size(), pb.size()) << what << " slice " << i;
      for (std::size_t p = 0; p < pa.size(); ++p) {
        ASSERT_EQ(pa[p], pb[p])
            << what << " slice " << i << " pixel " << p;
      }
      ASSERT_EQ(a.slices[i].confidence, b.slices[i].confidence)
          << what << " slice " << i;
    }
  }
};

TEST_F(DeterminismSweep, MasksAreByteIdenticalAcrossCacheTopologies) {
  fibsem::SynthConfig synth;
  synth.type = fibsem::SampleType::kCrystalline;
  synth.width = 64;
  synth.height = 64;
  synth.depth = 4;
  synth.seed = 515;
  const fibsem::SyntheticVolume vol = fibsem::generate_volume(synth);
  const char* prompt = "bright needle-like crystalline catalyst";
  const auto run = [&](const core::PipelineConfig& cfg) {
    const core::ZenesisPipeline pipe(cfg);
    // Twice through the same pipeline: the second pass exercises warm
    // mask/feature caches and must change nothing.
    (void)pipe.segment_volume(core::VolumeRequest::view(vol.volume, prompt));
    return pipe.segment_volume(core::VolumeRequest::view(vol.volume, prompt));
  };

  core::PipelineConfig baseline;
  baseline.volume_threads = 1;
  baseline.feature_cache.enabled = false;
  baseline.mask_cache.enabled = false;
  const core::VolumeResult want = run(baseline);

  {
    core::PipelineConfig cfg;
    cfg.volume_threads = 2;
    cfg.feature_cache.shards = 1;
    cfg.mask_cache.enabled = false;
    expect_equal(want, run(cfg), "single-shard feature cache");
  }
  {
    core::PipelineConfig cfg;
    cfg.volume_threads = 2;
    cfg.feature_cache.shards = 8;
    cfg.mask_cache.enabled = false;
    expect_equal(want, run(cfg), "sharded feature cache");
  }
  {
    core::PipelineConfig cfg;
    cfg.volume_threads = 2;  // defaults: both caches on
    expect_equal(want, run(cfg), "mask cache on");
  }
  {
    const fs::path dir =
        fs::temp_directory_path() /
        ("zenesis_determinism_" + std::to_string(::getpid()));
    core::PipelineConfig cfg;
    cfg.volume_threads = 2;
    cfg.feature_cache.disk_path = dir.string();
    expect_equal(want, run(cfg), "disk-tiered, cold store");
    // A second pipeline over the now-warm store (deserialized encodings).
    expect_equal(want, run(cfg), "disk-tiered, warm store");
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

}  // namespace
