// GroundingDetector behavioural tests on controlled scenes.
#include <gtest/gtest.h>

#include "zenesis/models/grounding.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zm = zenesis::models;
namespace zi = zenesis::image;

namespace {

/// Bright textured square on a dark flat background.
zi::ImageF32 bright_square_scene() {
  zenesis::parallel::Rng rng(11);
  zi::ImageF32 img(128, 128, 1);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const bool inside = x >= 48 && x < 96 && y >= 32 && y < 80;
      const float base = inside ? 0.8f : 0.15f;
      const float noise =
          static_cast<float>(rng.normal(0.0, inside ? 0.06 : 0.01));
      img.at(x, y) = base + noise;
    }
  }
  return img;
}

}  // namespace

TEST(Grounding, LocalizesBrightObject) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "bright catalyst particle");
  ASSERT_FALSE(res.boxes.empty());
  const zi::Box truth{48, 32, 48, 48};
  EXPECT_GT(res.best().box.iou(truth), 0.35);
}

TEST(Grounding, DarkPromptSelectsBackgroundNotObject) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "dark background");
  ASSERT_FALSE(res.boxes.empty());
  const zi::Box truth{48, 32, 48, 48};
  // The best dark-prompt box should not be the bright square.
  EXPECT_LT(res.best().box.iou(truth), 0.3);
}

TEST(Grounding, EmptyPromptYieldsNothing) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "");
  EXPECT_TRUE(res.boxes.empty());
  EXPECT_TRUE(res.best().box.empty());
}

TEST(Grounding, StopWordOnlyPromptYieldsNothing) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "the of in a");
  EXPECT_TRUE(res.boxes.empty());
}

TEST(Grounding, UnknownWordsGatedByTextThreshold) {
  zm::GroundingDetector dino;  // default text_threshold 0.25 > 0.1 hash weight
  const auto res = dino.detect(bright_square_scene(), "zorblax quux");
  EXPECT_TRUE(res.boxes.empty());
}

TEST(Grounding, BoxesSortedByConfidence) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "bright catalyst");
  for (std::size_t i = 1; i < res.boxes.size(); ++i) {
    EXPECT_GE(res.boxes[i - 1].score, res.boxes[i].score);
  }
}

TEST(Grounding, RelevanceMapNormalized) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "bright catalyst");
  ASSERT_GT(res.grid_w, 0);
  float max_abs = 0.0f;
  for (float v : res.relevance.pixels()) {
    EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
    max_abs = std::max(max_abs, std::abs(v));
  }
  EXPECT_NEAR(max_abs, 1.0f, 1e-4f);
}

TEST(Grounding, HigherBoxThresholdShrinksDetections) {
  zm::GroundingConfig loose, strict;
  loose.box_threshold = 0.25f;
  strict.box_threshold = 0.75f;
  zm::GroundingDetector dl(loose), ds(strict);
  const auto img = bright_square_scene();
  const auto rl = dl.detect(img, "bright catalyst");
  const auto rs = ds.detect(img, "bright catalyst");
  std::int64_t area_l = 0, area_s = 0;
  for (const auto& b : rl.boxes) area_l += b.box.area();
  for (const auto& b : rs.boxes) area_s += b.box.area();
  EXPECT_GE(area_l, area_s);
}

TEST(Grounding, DeterministicAcrossRuns) {
  zm::GroundingDetector dino;
  const auto img = bright_square_scene();
  const auto a = dino.detect(img, "bright catalyst");
  const auto b = dino.detect(img, "bright catalyst");
  ASSERT_EQ(a.boxes.size(), b.boxes.size());
  for (std::size_t i = 0; i < a.boxes.size(); ++i) {
    EXPECT_EQ(a.boxes[i].box, b.boxes[i].box);
    EXPECT_EQ(a.boxes[i].score, b.boxes[i].score);
  }
}

TEST(Grounding, BoxesClippedToImage) {
  zm::GroundingDetector dino;
  const auto res = dino.detect(bright_square_scene(), "bright catalyst");
  for (const auto& b : res.boxes) {
    EXPECT_GE(b.box.x, 0);
    EXPECT_GE(b.box.y, 0);
    EXPECT_LE(b.box.right(), 128);
    EXPECT_LE(b.box.bottom(), 128);
  }
}
