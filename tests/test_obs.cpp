// Tests for zenesis::obs — span recording, nesting, trace-id stitching
// across ThreadPool and SegmentService threads, the disabled-mode hot-path
// contract (no recording, no allocation) and the Chrome trace export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "zenesis/fibsem/synth.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/parallel/thread_pool.hpp"
#include "zenesis/serve/service.hpp"

namespace zo = zenesis::obs;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zs = zenesis::serve;

// Global allocation counter for the disabled-mode no-allocation check.
// Plain new/delete pair with malloc/free; aligned forms keep the default
// implementation (they pair with the default aligned delete). noinline
// keeps the malloc/free internals opaque to the optimizer, which would
// otherwise flag a false -Wmismatched-new-delete at inlined call sites.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if defined(__GNUC__)
#define ZEN_TEST_NOINLINE __attribute__((noinline))
#else
#define ZEN_TEST_NOINLINE
#endif

ZEN_TEST_NOINLINE void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
ZEN_TEST_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}
ZEN_TEST_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
ZEN_TEST_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
ZEN_TEST_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
ZEN_TEST_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

#if !defined(ZENESIS_OBS_DISABLED)
namespace {

/// Re-enables the previous tracing state on scope exit so a failing test
/// cannot leak "enabled" into unrelated suites.
class TracingOn {
 public:
  TracingOn() {
    zo::set_enabled(true);
    zo::TraceCollector::global().clear();
  }
  ~TracingOn() { zo::set_enabled(false); }
};

const zo::SpanEvent* find_event(const std::vector<zo::SpanEvent>& events,
                                const std::string& name) {
  for (const auto& ev : events) {
    if (ev.name != nullptr && name == ev.name) return &ev;
  }
  return nullptr;
}

std::vector<const zo::SpanEvent*> find_all(
    const std::vector<zo::SpanEvent>& events, const std::string& name) {
  std::vector<const zo::SpanEvent*> out;
  for (const auto& ev : events) {
    if (ev.name != nullptr && name == ev.name) out.push_back(&ev);
  }
  return out;
}

zf::SynthConfig small_config() {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 64;
  cfg.height = 64;
  cfg.depth = 2;
  cfg.seed = 909;
  return cfg;
}

}  // namespace

TEST(Obs, NestedSpansRecordDepthTimingAndTraceId) {
  TracingOn tracing;
  const std::uint64_t id = zo::new_trace_id();
  ASSERT_NE(id, 0u);
  {
    zo::TraceScope trace(id);
    zo::Span outer("obs.test.outer");
    {
      zo::Span inner("obs.test.inner");
      inner.set_arg(42);
    }
  }
  const auto events = zo::TraceCollector::global().snapshot();
  const zo::SpanEvent* outer = find_event(events, "obs.test.outer");
  const zo::SpanEvent* inner = find_event(events, "obs.test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->trace_id, id);
  EXPECT_EQ(inner->trace_id, id);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  EXPECT_EQ(inner->arg, 42u);
  // The inner span nests strictly inside the outer one in time.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  EXPECT_GE(outer->end_ns, outer->start_ns);

  const auto stages = zo::TraceCollector::global().aggregate();
  ASSERT_TRUE(stages.count("obs.test.outer"));
  ASSERT_TRUE(stages.count("obs.test.inner"));
  const zo::StageStats& st = stages.at("obs.test.outer");
  EXPECT_EQ(st.count, 1u);
  EXPECT_GE(st.max_us, st.min_us);
  EXPECT_GE(st.mean_us(), 0.0);
}

TEST(Obs, ThreadPoolStitchesSubmitterTraceIdAcrossThreads) {
  TracingOn tracing;
  constexpr int kTasks = 8;
  const std::uint64_t id = zo::new_trace_id();
  std::uint64_t main_tid = 0;
  {
    zo::TraceScope trace(id);
    zo::Span main_span("obs.test.main");
    zenesis::parallel::ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([] { zo::Span span("obs.test.pool_item"); });
    }
    pool.wait_idle();
  }
  const auto events = zo::TraceCollector::global().snapshot();
  const zo::SpanEvent* main_ev = find_event(events, "obs.test.main");
  ASSERT_NE(main_ev, nullptr);
  main_tid = main_ev->tid;

  const auto items = find_all(events, "obs.test.pool_item");
  ASSERT_EQ(items.size(), static_cast<std::size_t>(kTasks));
  bool off_main = false;
  for (const zo::SpanEvent* ev : items) {
    // The submitter's trace id travels with each task even though the
    // span records on a worker thread.
    EXPECT_EQ(ev->trace_id, id);
    // Every task runs nested inside the pool's own run/steal span.
    EXPECT_GE(ev->depth, 1u);
    if (ev->tid != main_tid) off_main = true;
  }
  EXPECT_TRUE(off_main) << "no task span recorded on a worker thread";
  // The pool's own scheduling spans carry the same stitched id.
  bool pool_span_seen = false;
  for (const auto& ev : events) {
    if (ev.name == nullptr) continue;
    const std::string name = ev.name;
    if (name == "pool.run" || name == "pool.steal") {
      pool_span_seen = true;
      EXPECT_EQ(ev.trace_id, id);
    }
  }
  EXPECT_TRUE(pool_span_seen);
}

TEST(Obs, ServiceStitchesOneRequestAcrossSubmitQueueAndDecode) {
  TracingOn tracing;
  const auto s = zf::generate_slice(small_config(), 0);

  zs::SegmentService service;
  auto future = service.submit(zs::Request::slice(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline)));
  const zs::Response r = future.get();
  service.shutdown();

  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.trace_id, 0u);

  const auto events = zo::TraceCollector::global().snapshot();
  std::set<std::string> stages_for_request;
  std::set<std::uint64_t> tids_for_request;
  for (const auto& ev : events) {
    if (ev.trace_id != r.trace_id || ev.name == nullptr) continue;
    stages_for_request.insert(ev.name);
    tids_for_request.insert(ev.tid);
    EXPECT_GE(ev.end_ns, ev.start_ns);
  }
  // submit (caller thread) → queue wait (closed at dispatch) → decode
  // (fan-out substrate): one id stitches all of them.
  EXPECT_TRUE(stages_for_request.count("serve.submit"));
  EXPECT_TRUE(stages_for_request.count("serve.queue"));
  EXPECT_TRUE(stages_for_request.count("serve.decode"));
  // The request crossed the async boundary: spans from at least two
  // distinct threads share the response's trace id.
  EXPECT_GE(tids_for_request.size(), 2u);
}

TEST(Obs, ChromeTraceJsonIsWellFormed) {
  TracingOn tracing;
  {
    zo::TraceScope trace(zo::new_trace_id());
    zo::Span outer("obs.test.chrome");
    { zo::Span inner("obs.test.chrome_inner"); }
  }
  const std::int64_t t0 = zo::now_ns();
  zo::record_span("obs.test.manual", 123, t0, t0 + 5000, 9);

  const auto events = zo::TraceCollector::global().snapshot();
  ASSERT_GE(events.size(), 3u);
  for (const auto& ev : events) {
    ASSERT_NE(ev.name, nullptr);
    EXPECT_LE(ev.start_ns, ev.end_ns);
    EXPECT_GT(ev.tid, 0u);
  }

  const std::string json = zo::TraceCollector::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs.test.manual\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":123"), std::string::npos);
  // Braces and brackets balance, so chrome://tracing can parse it.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

#endif  // !ZENESIS_OBS_DISABLED

TEST(Obs, DisabledSpansRecordNothingAndDoNotAllocate) {
  zo::set_enabled(false);
  zo::TraceCollector::global().clear();
  const std::size_t threads_before = zo::TraceCollector::global().threads_seen();

  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    zo::Span span("obs.test.disabled");
    span.set_arg(static_cast<std::uint64_t>(i));
  }
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after, allocs_before)
      << "disabled Span must not touch the heap";
  EXPECT_TRUE(zo::TraceCollector::global().snapshot().empty());
  EXPECT_EQ(zo::TraceCollector::global().threads_seen(), threads_before)
      << "disabled Span must not register its thread";
}

TEST(Obs, TraceScopeRestoresPreviousIdAndSurvivesObsOff) {
  // Trace-id plumbing stays real even when recording is disabled (or the
  // whole subsystem is compiled out) — serve request ids depend on it.
  EXPECT_EQ(zo::current_trace_id(), 0u);
  const std::uint64_t a = zo::new_trace_id();
  const std::uint64_t b = zo::new_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  {
    zo::TraceScope outer(a);
    EXPECT_EQ(zo::current_trace_id(), a);
    {
      zo::TraceScope inner(b);
      EXPECT_EQ(zo::current_trace_id(), b);
    }
    EXPECT_EQ(zo::current_trace_id(), a);
  }
  EXPECT_EQ(zo::current_trace_id(), 0u);
}
