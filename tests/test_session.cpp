// Session (platform facade) tests: the three modes + interactive extras.
#include <gtest/gtest.h>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

zf::SynthConfig test_config(zf::SampleType type) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 4;
  cfg.seed = 77;
  return cfg;
}

}  // namespace

TEST(Session, ModeASingleImage) {
  zc::Session session;
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  const auto r = session.mode_a_segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  EXPECT_GT(zi::mask_area(r.mask), 0);
}

TEST(Session, ModeASelectedSlice) {
  zc::Session session;
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kAmorphous));
  const auto r = session.mode_a_segment_slice(
      vol.volume, 2, zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_EQ(r.ai_ready.width(), 128);
}

TEST(Session, ModeBBatchImages) {
  zc::Session session;
  const auto s0 = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  const auto s1 = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 1);
  const auto rs = session.mode_b_segment_images(
      {zi::AnyImage(s0.raw), zi::AnyImage(s1.raw)},
      zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_EQ(rs.size(), 2u);
}

TEST(Session, ModeBVolume) {
  zc::Session session;
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  const auto r = session.mode_b_segment_volume(zc::VolumeRequest::view(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline)));
  EXPECT_EQ(r.slices.size(), 4u);
}

TEST(Session, ModeCRecordsIntoDashboard) {
  zc::Session session;
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  const auto r = session.mode_a_segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const auto m = session.mode_c_evaluate("crystalline", "zenesis", 0, r.mask,
                                         s.ground_truth);
  EXPECT_GT(m.accuracy, 0.0);
  EXPECT_EQ(session.dashboard().records().size(), 1u);
  EXPECT_EQ(session.dashboard().records()[0].dataset, "crystalline");
}

TEST(Session, RectifyRunsEndToEnd) {
  zc::Session session;
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  const auto automated = session.mode_a_segment(zi::AnyImage(s.raw), "");
  zenesis::hitl::SimulatedAnnotator expert(1.0, 3);
  const auto r = session.rectify(automated, s.ground_truth, expert);
  EXPECT_GE(r.after_iou, 0.0);
  EXPECT_FALSE(r.chosen_box.empty());
}

TEST(Session, FurtherSegmentDelegates) {
  zc::Session session;
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  const auto parent = session.mode_a_segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const auto child = session.further_segment(parent, {0, 0, 64, 64},
                                             "bright needle catalyst");
  EXPECT_EQ(child.mask.width(), 128);
}

TEST(Session, ModeCEvaluateAutoPublishesRuntimeStats) {
  // Since PR 2 the cache counters ride along with every evaluation — no
  // explicit publish_runtime_stats() call required.
  zc::Session session;
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  const auto r = session.mode_a_segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  session.mode_c_evaluate("crystalline", "zenesis", 0, r.mask, s.ground_truth);
  const auto& stats = session.dashboard().stats();
  ASSERT_TRUE(stats.count("feature_cache_hits"));
  ASSERT_TRUE(stats.count("feature_cache_hit_rate"));
  // mode_a_segment encodes once for grounding and hits once in assemble.
  EXPECT_GT(stats.at("feature_cache_hits"), 0.0);
}

TEST(Session, StatsSourcesFoldIntoDashboard) {
  zc::Session session;
  int calls = 0;
  session.add_stats_source([&calls](zenesis::eval::Dashboard& d) {
    ++calls;
    d.set_stat("custom_source_stat", 42.0);
  });
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  const auto r = session.mode_a_segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kAmorphous));
  session.mode_c_evaluate("amorphous", "zenesis", 0, r.mask, s.ground_truth);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(session.dashboard().stats().at("custom_source_stat"), 42.0);

  // The explicit method remains as a compatible alias.
  session.publish_runtime_stats();
  EXPECT_EQ(calls, 2);
  session.clear_stats_sources();
  session.publish_runtime_stats();
  EXPECT_EQ(calls, 2);
}

TEST(Session, ScopedStatsSourceStopsWhenRegistrationDies) {
  zc::Session session;
  int calls = 0;
  {
    zc::StatsRegistration reg =
        session.add_scoped_stats_source([&calls](zenesis::eval::Dashboard& d) {
          ++calls;
          d.set_stat("scoped_source_stat", 7.0);
        });
    EXPECT_TRUE(reg.active());
    session.publish_runtime_stats();
    EXPECT_EQ(calls, 1);
  }  // registration destroyed → source deactivated
  session.publish_runtime_stats();  // pruned, never invoked again
  session.publish_runtime_stats();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(session.dashboard().stats().at("scoped_source_stat"), 7.0);
}

TEST(Session, InvalidConfigThrowsAtConstruction) {
  zc::PipelineConfig cfg;
  cfg.max_boxes = 0;
  EXPECT_THROW(zc::Session{cfg}, std::invalid_argument);
}
