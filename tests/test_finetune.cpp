// Fine-tuning module tests: concept learning from one annotated slice,
// merging, and example-driven grounding (future-work item 3).
#include <gtest/gtest.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/models/finetune.hpp"

namespace zm = zenesis::models;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

struct Annotated {
  zi::ImageF32 ready;
  zm::FeatureMaps maps;
  zi::Mask gt;
};

Annotated annotated_slice(zf::SampleType type, std::int64_t z) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.seed = 404;
  const auto s = zf::generate_slice(cfg, z);
  Annotated a;
  a.ready = zi::make_ai_ready(zi::AnyImage(s.raw));
  a.maps = zm::compute_features(a.ready);
  a.gt = s.ground_truth;
  return a;
}

}  // namespace

TEST(Finetune, LearnedDirectionPointsAtForeground) {
  const Annotated a = annotated_slice(zf::SampleType::kCrystalline, 0);
  const zm::LearnedConcept c = zm::learn_concept(a.maps, a.gt);
  // Needles are brighter and higher-rank than their surround.
  EXPECT_GT(c.direction[zm::kIntensity], 0.0f);
  EXPECT_GT(c.direction[zm::kRank], 0.0f);
  EXPECT_GT(c.separability, 0.5);
  EXPECT_GT(c.foreground_pixels, 0);
}

TEST(Finetune, DegenerateAnnotationsThrow) {
  const Annotated a = annotated_slice(zf::SampleType::kCrystalline, 0);
  zi::Mask empty(128, 128), full(128, 128);
  full.fill(1);
  EXPECT_THROW(zm::learn_concept(a.maps, empty), std::invalid_argument);
  EXPECT_THROW(zm::learn_concept(a.maps, full), std::invalid_argument);
  EXPECT_THROW(zm::learn_concept(a.maps, zi::Mask(4, 4)), std::invalid_argument);
}

TEST(Finetune, LearnedConceptTransfersToNewSlice) {
  // Annotate slice 0, deploy on slice 2 of the same volume.
  const Annotated train = annotated_slice(zf::SampleType::kCrystalline, 0);
  const Annotated test = annotated_slice(zf::SampleType::kCrystalline, 2);
  const zm::LearnedConcept c = zm::learn_concept(train.maps, train.gt);

  const zenesis::core::ZenesisPipeline pipe;
  const zm::GroundingResult g =
      zm::apply_concept(pipe.detector(), test.maps, c);
  ASSERT_TRUE(g.has_direction);
  ASSERT_FALSE(g.boxes.empty());
  // The grounded region must cover most of the catalyst.
  std::int64_t covered = 0;
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      if (test.gt.at(x, y) == 0) continue;
      for (const auto& b : g.boxes) {
        if (b.box.contains({x, y})) {
          ++covered;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(covered) /
                static_cast<double>(zi::mask_area(test.gt)),
            0.7);
}

TEST(Finetune, MergeWeightsBySupport) {
  zm::LearnedConcept a, b;
  a.direction[0] = 1.0f;
  a.foreground_pixels = 100;
  a.separability = 1.0;
  b.direction[0] = -1.0f;
  b.foreground_pixels = 300;
  b.separability = 3.0;
  const zm::LearnedConcept m = zm::merge_concepts({a, b});
  EXPECT_NEAR(m.direction[0], -0.5f, 1e-5f);
  EXPECT_NEAR(m.separability, 2.5, 1e-9);
  EXPECT_EQ(m.foreground_pixels, 400);
  EXPECT_THROW(zm::merge_concepts({}), std::invalid_argument);
}

TEST(Finetune, BlendInterpolatesDirections) {
  const Annotated a = annotated_slice(zf::SampleType::kAmorphous, 0);
  const zm::LearnedConcept c = zm::learn_concept(a.maps, a.gt);
  const zenesis::core::ZenesisPipeline pipe;
  const auto pure = zm::apply_concept(pipe.detector(), a.maps, c, "", 1.0f);
  const auto blended =
      zm::apply_concept(pipe.detector(), a.maps, c, "dark background", 0.5f);
  // The blended direction must differ from the pure learned one.
  bool differs = false;
  for (int k = 0; k < zm::kFeatureChannels; ++k) {
    differs = differs || pure.concept_direction[static_cast<std::size_t>(k)] !=
                             blended.concept_direction[static_cast<std::size_t>(k)];
  }
  EXPECT_TRUE(differs);
}

TEST(Finetune, ExampleDrivenMatchesPromptDrivenQuality) {
  // Grounding learned from one annotation should segment about as well as
  // the hand-written expert prompt.
  const Annotated train = annotated_slice(zf::SampleType::kAmorphous, 0);
  const Annotated test = annotated_slice(zf::SampleType::kAmorphous, 1);
  const zm::LearnedConcept c = zm::learn_concept(train.maps, train.gt);

  const zenesis::core::ZenesisPipeline pipe;
  // Reuse the standard prompt path for the baseline.
  const auto prompt_res = pipe.segment_ready(
      test.ready, zf::default_prompt(zf::SampleType::kAmorphous));
  const double prompt_iou = zi::mask_iou(prompt_res.mask, test.gt);
  ASSERT_GT(prompt_iou, 0.3);
  // Example-driven grounding feeds the same assembly path via the boxes'
  // relevance; here we only check the learned relevance localizes: the
  // best learned box must overlap the catalyst more than chance.
  const zm::GroundingResult g = zm::apply_concept(pipe.detector(), test.maps, c);
  ASSERT_FALSE(g.boxes.empty());
  std::int64_t inside = 0;
  const auto& best = g.boxes.front().box;
  for (std::int64_t y = best.y; y < best.bottom(); ++y) {
    for (std::int64_t x = best.x; x < best.right(); ++x) {
      inside += test.gt.at(x, y) != 0;
    }
  }
  const double density =
      static_cast<double>(inside) / static_cast<double>(best.area());
  EXPECT_GT(density, zi::mask_fraction(test.gt) * 0.9);
}
