// Determinism of segment_images / mode_b_segment_images (the Mode-B
// independent-image batch path): any thread count, mixed image sizes and
// sample types, cache on or off — all must reproduce the serial baseline
// byte-for-byte, mirroring test_volume_parallel for segment_volume.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"

namespace {

using namespace zenesis;

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

/// Batch with deliberately mixed geometry (the service/batch path must
/// not assume one resolution) and a duplicate (cache-hit traffic).
std::vector<image::AnyImage> mixed_batch() {
  std::vector<image::AnyImage> images;
  const std::int64_t sizes[] = {64, 96, 64, 80, 96, 64};
  const std::uint64_t seeds[] = {31, 32, 31, 33, 34, 35};  // 0 and 2 identical
  for (std::size_t i = 0; i < 6; ++i) {
    fibsem::SynthConfig cfg;
    cfg.type = (i % 2 == 0) ? fibsem::SampleType::kCrystalline
                            : fibsem::SampleType::kAmorphous;
    cfg.width = sizes[i];
    cfg.height = sizes[i];
    cfg.seed = seeds[i];
    images.emplace_back(fibsem::generate_slice(cfg, 0).raw);
  }
  return images;
}

core::PipelineConfig config_with(std::size_t threads, bool cache) {
  core::PipelineConfig cfg;
  cfg.volume_threads = threads;
  cfg.feature_cache.enabled = cache;
  return cfg;
}

void expect_slice_results_equal(const std::vector<core::SliceResult>& base,
                                const std::vector<core::SliceResult>& got) {
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto& a = base[i];
    const auto& b = got[i];
    ASSERT_EQ(a.mask.width(), b.mask.width()) << "image " << i;
    ASSERT_EQ(a.mask.height(), b.mask.height()) << "image " << i;
    const auto pa = a.mask.pixels();
    const auto pb = b.mask.pixels();
    for (std::size_t p = 0; p < pa.size(); ++p) {
      ASSERT_EQ(pa[p], pb[p]) << "image " << i << " pixel " << p;
    }
    EXPECT_EQ(a.primary_box, b.primary_box) << "image " << i;
    EXPECT_EQ(a.confidence, b.confidence) << "image " << i;
    EXPECT_EQ(a.grounding.boxes.size(), b.grounding.boxes.size())
        << "image " << i;
    EXPECT_EQ(a.box_masks.size(), b.box_masks.size()) << "image " << i;
  }
}

}  // namespace

TEST(BatchImages, ParallelMatchesSerialAcrossThreadCounts) {
  const std::vector<image::AnyImage> images = mixed_batch();
  const core::ZenesisPipeline serial(config_with(1, false));
  const std::vector<core::SliceResult> base =
      serial.segment_images(images, kPrompt);
  ASSERT_EQ(base.size(), images.size());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    for (const bool cache : {false, true}) {
      const core::ZenesisPipeline pipe(config_with(threads, cache));
      expect_slice_results_equal(base, pipe.segment_images(images, kPrompt));
    }
  }
}

TEST(BatchImages, GlobalPoolMatchesSerial) {
  const std::vector<image::AnyImage> images = mixed_batch();
  const core::ZenesisPipeline serial(config_with(1, false));
  const core::ZenesisPipeline global(config_with(0, true));
  expect_slice_results_equal(serial.segment_images(images, kPrompt),
                             global.segment_images(images, kPrompt));
}

TEST(BatchImages, RepeatedRunsAreDeterministic) {
  const std::vector<image::AnyImage> images = mixed_batch();
  const core::ZenesisPipeline pipe(config_with(8, true));
  const auto first = pipe.segment_images(images, kPrompt);
  const auto second = pipe.segment_images(images, kPrompt);  // cache-hot
  expect_slice_results_equal(first, second);
  EXPECT_GT(pipe.cache_stats().hits, 0u);
}

TEST(BatchImages, SessionWrapperMatchesPipeline) {
  const std::vector<image::AnyImage> images = mixed_batch();
  const core::Session session(config_with(2, true));
  const core::ZenesisPipeline serial(config_with(1, false));
  expect_slice_results_equal(serial.segment_images(images, kPrompt),
                             session.mode_b_segment_images(images, kPrompt));
}

TEST(BatchImages, EmptyBatchIsANoOp) {
  const core::ZenesisPipeline pipe(config_with(4, true));
  EXPECT_TRUE(pipe.segment_images({}, kPrompt).empty());
}
