// Tests for typed image/volume containers and metadata.
#include <gtest/gtest.h>

#include <stdexcept>

#include "zenesis/image/image.hpp"

namespace zi = zenesis::image;

TEST(Image, ConstructionZeroInitializes) {
  zi::ImageU16 img(4, 3, 1);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 1);
  for (auto v : img.pixels()) EXPECT_EQ(v, 0);
}

TEST(Image, AtReadsAndWrites) {
  zi::ImageF32 img(3, 3, 1);
  img.at(2, 1) = 0.5f;
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
}

TEST(Image, MultiChannelInterleaved) {
  zi::ImageU8 img(2, 1, 3);
  img.at(1, 0, 2) = 9;
  EXPECT_EQ(img.pixels()[1 * 3 + 2], 9);
}

TEST(Image, OutOfRangeThrows) {
  zi::ImageU8 img(2, 2, 1);
  EXPECT_THROW(img.at(2, 0), std::out_of_range);
  EXPECT_THROW(img.at(0, -1), std::out_of_range);
  EXPECT_THROW(img.at(0, 0, 1), std::out_of_range);
}

TEST(Image, ContainsChecksBounds) {
  zi::ImageU8 img(3, 2, 1);
  EXPECT_TRUE(img.contains(0, 0));
  EXPECT_TRUE(img.contains(2, 1));
  EXPECT_FALSE(img.contains(3, 0));
  EXPECT_FALSE(img.contains(-1, 0));
}

TEST(Image, FillSetsAll) {
  zi::ImageU16 img(2, 2, 1);
  img.fill(777);
  for (auto v : img.pixels()) EXPECT_EQ(v, 777);
}

TEST(AnyImage, BitDepthPerType) {
  EXPECT_EQ(zi::bit_depth(zi::AnyImage(zi::ImageU8(1, 1))), 8);
  EXPECT_EQ(zi::bit_depth(zi::AnyImage(zi::ImageU16(1, 1))), 16);
  EXPECT_EQ(zi::bit_depth(zi::AnyImage(zi::ImageU32(1, 1))), 32);
  EXPECT_EQ(zi::bit_depth(zi::AnyImage(zi::ImageF32(1, 1))), 32);
}

TEST(AnyImage, GeometryAccessors) {
  zi::AnyImage img = zi::ImageU16(5, 7, 1);
  EXPECT_EQ(zi::width_of(img), 5);
  EXPECT_EQ(zi::height_of(img), 7);
  EXPECT_EQ(zi::channels_of(img), 1);
}

TEST(VoxelSize, AnisotropyRatio) {
  zi::VoxelSize v{4.0, 4.0, 20.0};
  EXPECT_FALSE(v.isotropic());
  EXPECT_DOUBLE_EQ(v.anisotropy(), 5.0);
  zi::VoxelSize iso{2.0, 2.0, 2.0};
  EXPECT_TRUE(iso.isotropic());
}

TEST(Volume, SliceGeometryConsistent) {
  zi::VolumeU16 vol(8, 6, 3, 1, {4.0, 4.0, 20.0});
  EXPECT_EQ(vol.depth(), 3);
  EXPECT_EQ(vol.width(), 8);
  EXPECT_EQ(vol.height(), 6);
  EXPECT_DOUBLE_EQ(vol.voxel().z_nm, 20.0);
  vol.slice(1).at(0, 0) = 42;
  EXPECT_EQ(vol.slice(1).at(0, 0), 42);
  EXPECT_EQ(vol.slice(0).at(0, 0), 0);
}

TEST(Volume, PushSliceValidatesGeometry) {
  zi::VolumeU16 vol(4, 4, 1);
  vol.push_slice(zi::ImageU16(4, 4, 1));
  EXPECT_EQ(vol.depth(), 2);
  EXPECT_THROW(vol.push_slice(zi::ImageU16(5, 4, 1)), std::invalid_argument);
}

TEST(Volume, EmptyVolumeBehaves) {
  zi::VolumeU16 vol;
  EXPECT_EQ(vol.depth(), 0);
  EXPECT_EQ(vol.width(), 0);
}
