// AutomaticMaskGenerator (SAM-only baseline) tests.
#include <gtest/gtest.h>

#include "zenesis/image/roi.hpp"
#include "zenesis/models/auto_mask.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zm = zenesis::models;
namespace zi = zenesis::image;

namespace {

/// Bright blob region on a large flat dark background — the layout where
/// unguided max-confidence selection picks the background.
zi::ImageF32 blob_on_black(zi::Mask* gt = nullptr) {
  zenesis::parallel::Rng rng(41);
  zi::ImageF32 img(128, 128, 1);
  if (gt != nullptr) *gt = zi::Mask(128, 128);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const double d2 = (x - 90.0) * (x - 90.0) + (y - 40.0) * (y - 40.0);
      const bool inside = d2 < 18.0 * 18.0;
      img.at(x, y) = inside ? 0.7f + static_cast<float>(rng.normal(0.0, 0.08))
                            : 0.06f + static_cast<float>(rng.normal(0.0, 0.012));
      if (gt != nullptr && inside) gt->at(x, y) = 1;
    }
  }
  return img;
}

}  // namespace

TEST(AutoMask, GeneratesMultipleDistinctMasks) {
  zm::SamModel sam;
  zm::AutomaticMaskGenerator gen(sam);
  const auto enc = sam.encode(blob_on_black());
  const auto res = gen.generate(enc);
  EXPECT_GE(res.masks.size(), 2u);
  // Dedup: no two kept masks may exceed the dedup IoU.
  for (std::size_t i = 0; i < res.masks.size(); ++i) {
    for (std::size_t j = i + 1; j < res.masks.size(); ++j) {
      EXPECT_LT(zi::mask_iou(res.masks[i].mask, res.masks[j].mask), 0.85);
    }
  }
}

TEST(AutoMask, SortedByConfidence) {
  zm::SamModel sam;
  zm::AutomaticMaskGenerator gen(sam);
  const auto enc = sam.encode(blob_on_black());
  const auto res = gen.generate(enc);
  for (std::size_t i = 1; i < res.masks.size(); ++i) {
    EXPECT_GE(res.masks[i - 1].confidence, res.masks[i].confidence);
  }
}

TEST(AutoMask, MaxConfidencePicksLargeBackground) {
  // The documented SAM-only failure mode: best mask ≈ dark background,
  // not the bright object.
  zi::Mask gt;
  zm::SamModel sam;
  zm::AutomaticMaskGenerator gen(sam);
  const zi::Mask best = gen.segment_best(blob_on_black(&gt));
  EXPECT_LT(zi::mask_iou(best, gt), 0.3);
  EXPECT_GT(zi::mask_iou(best, zi::mask_not(gt)), 0.6);
}

TEST(AutoMask, MinAreaFilterDropsSpecks) {
  zm::SamModel sam;
  zm::AutoMaskConfig cfg;
  cfg.min_area_fraction = 0.5;  // absurdly high: only huge masks survive
  zm::AutomaticMaskGenerator gen(sam, cfg);
  const auto enc = sam.encode(blob_on_black());
  const auto res = gen.generate(enc);
  for (const auto& m : res.masks) {
    EXPECT_GE(m.area_fraction, 0.5);
  }
}

TEST(AutoMask, ZeroPointsYieldsNothing) {
  zm::SamModel sam;
  zm::AutoMaskConfig cfg;
  cfg.points_per_side = 0;
  zm::AutomaticMaskGenerator gen(sam, cfg);
  const auto enc = sam.encode(blob_on_black());
  EXPECT_TRUE(gen.generate(enc).masks.empty());
  EXPECT_EQ(gen.generate(enc).best(), nullptr);
}

TEST(AutoMask, SegmentBestFallsBackToEmptyMask) {
  zm::SamModel sam;
  zm::AutoMaskConfig cfg;
  cfg.points_per_side = 0;
  zm::AutomaticMaskGenerator gen(sam, cfg);
  const zi::ImageF32 img = blob_on_black();
  const zi::Mask m = gen.segment_best(img);
  EXPECT_EQ(m.width(), img.width());
  EXPECT_EQ(zi::mask_area(m), 0);
}
