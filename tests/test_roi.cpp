// Tests for crop/paste/overlay/mask utilities.
#include <gtest/gtest.h>

#include "zenesis/image/roi.hpp"

namespace zi = zenesis::image;

namespace {

zi::Mask make_mask(std::int64_t w, std::int64_t h,
                   std::initializer_list<zi::Point> fg) {
  zi::Mask m(w, h);
  for (const auto& p : fg) m.at(p.x, p.y) = 1;
  return m;
}

}  // namespace

TEST(Crop, ExtractsSubimage) {
  zi::ImageF32 img(4, 4, 1);
  img.at(2, 1) = 0.7f;
  const zi::ImageF32 c = zi::crop(img, {1, 1, 2, 2});
  EXPECT_EQ(c.width(), 2);
  EXPECT_EQ(c.height(), 2);
  EXPECT_FLOAT_EQ(c.at(1, 0), 0.7f);
}

TEST(Crop, ClipsToImage) {
  zi::ImageF32 img(4, 4, 1);
  const zi::ImageF32 c = zi::crop(img, {2, 2, 10, 10});
  EXPECT_EQ(c.width(), 2);
  EXPECT_EQ(c.height(), 2);
}

TEST(PasteMask, OffsetsAndClips) {
  zi::Mask dst(5, 5);
  zi::Mask patch = make_mask(2, 2, {{0, 0}, {1, 1}});
  zi::paste_mask(dst, patch, {4, 4, 2, 2});
  EXPECT_EQ(dst.at(4, 4), 1);  // (1,1) of patch falls outside → clipped
  EXPECT_EQ(zi::mask_area(dst), 1);
}

TEST(MaskArea, CountsForeground) {
  const zi::Mask m = make_mask(3, 3, {{0, 0}, {2, 2}});
  EXPECT_EQ(zi::mask_area(m), 2);
  EXPECT_NEAR(zi::mask_fraction(m), 2.0 / 9.0, 1e-12);
}

TEST(MaskBounds, TightBox) {
  const zi::Mask m = make_mask(6, 6, {{1, 2}, {4, 3}});
  EXPECT_EQ(zi::mask_bounds(m), (zi::Box{1, 2, 4, 2}));
  EXPECT_TRUE(zi::mask_bounds(zi::Mask(3, 3)).empty());
}

TEST(MaskIou, BasicProperties) {
  const zi::Mask a = make_mask(4, 1, {{0, 0}, {1, 0}});
  const zi::Mask b = make_mask(4, 1, {{1, 0}, {2, 0}});
  EXPECT_NEAR(zi::mask_iou(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(zi::mask_iou(a, a), 1.0);
  EXPECT_DOUBLE_EQ(zi::mask_iou(zi::Mask(4, 1), zi::Mask(4, 1)), 1.0);
  EXPECT_DOUBLE_EQ(zi::mask_iou(a, zi::Mask(4, 1)), 0.0);
}

TEST(MaskLogic, AndOrNot) {
  const zi::Mask a = make_mask(3, 1, {{0, 0}, {1, 0}});
  const zi::Mask b = make_mask(3, 1, {{1, 0}, {2, 0}});
  EXPECT_EQ(zi::mask_area(zi::mask_and(a, b)), 1);
  EXPECT_EQ(zi::mask_area(zi::mask_or(a, b)), 3);
  EXPECT_EQ(zi::mask_area(zi::mask_not(a)), 1);
}

TEST(OverlayMask, ForegroundTintedBoundaryMarked) {
  zi::ImageF32 img(5, 5, 1);
  img.fill(0.5f);
  const zi::Mask m = make_mask(5, 5, {{2, 2}});
  const zi::ImageU8 ov = zi::overlay_mask(img, m);
  EXPECT_EQ(ov.channels(), 3);
  // Isolated pixel is all-boundary → red.
  EXPECT_EQ(ov.at(2, 2, 0), 255);
  // Background stays gray.
  EXPECT_EQ(ov.at(0, 0, 0), ov.at(0, 0, 1));
}

TEST(DrawBox, PaintsOutlineOnly) {
  zi::ImageU8 img(6, 6, 3);
  zi::draw_box(img, {1, 1, 4, 4}, 255, 0, 0);
  EXPECT_EQ(img.at(1, 1, 0), 255);
  EXPECT_EQ(img.at(4, 1, 0), 255);
  EXPECT_EQ(img.at(2, 2, 0), 0);  // interior untouched
}

TEST(DrawBox, OutOfBoundsBoxIsClipped) {
  zi::ImageU8 img(4, 4, 3);
  zi::draw_box(img, {-10, -10, 100, 100}, 0, 255, 0);
  EXPECT_EQ(img.at(0, 0, 1), 255);
  zi::draw_box(img, {10, 10, 2, 2}, 0, 255, 0);  // fully outside: no throw
  SUCCEED();
}
