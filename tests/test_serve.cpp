// SegmentService contract tests (the ISSUE-2 acceptance list):
//   (a) responses are byte-identical to the equivalent blocking
//       ZenesisPipeline call for every batch size / fan-out width,
//   (b) a full queue rejects immediately instead of blocking or dropping,
//   (c) expired deadlines complete with DeadlineExpired without running
//       the pipeline,
//   (d) shutdown drains admitted requests and rejects new ones.
// Plus cancellation, priority ordering, stats/dashboard publication, and
// config validation surfacing. Run under TSAN and ASAN via tools/ci.sh.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/serve/service.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zs = zenesis::serve;

namespace {

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

zf::SyntheticSlice make_slice(std::int64_t size, std::uint64_t seed) {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = seed;
  return zf::generate_slice(cfg, 0);
}

zf::SyntheticVolume make_volume() {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 64;
  cfg.height = 64;
  cfg.depth = 4;
  cfg.seed = 99;
  return zf::generate_volume(cfg);
}

void expect_masks_equal(const zi::Mask& a, const zi::Mask& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "pixel " << i;
  }
}

}  // namespace

// (a) Byte-identical to blocking calls for every batch size / fan-out.
TEST(Serve, SliceResponsesMatchBlockingPipeline) {
  // A small request mix with repeats — repeats are exactly the
  // cache-amortized traffic the micro-batcher targets.
  std::vector<zf::SyntheticSlice> slices;
  for (std::uint64_t s : {11u, 22u, 33u}) slices.push_back(make_slice(64, s));
  const std::vector<std::size_t> traffic = {0, 1, 0, 2, 1, 0, 2, 2};

  const zc::ZenesisPipeline reference;
  std::vector<zc::SliceResult> expected;
  for (const std::size_t idx : traffic) {
    expected.push_back(
        reference.segment(zi::AnyImage(slices[idx].raw), kPrompt));
  }

  for (const std::size_t max_batch : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t fanout : {std::size_t{1}, std::size_t{4}}) {
      zs::ServiceConfig cfg;
      cfg.max_batch = max_batch;
      cfg.fanout_threads = fanout;
      cfg.start_paused = true;  // admit everything, then one resume —
                                // exercises real micro-batch grouping
      zs::SegmentService service(cfg);
      std::vector<std::future<zs::Response>> futures;
      for (const std::size_t idx : traffic) {
        futures.push_back(service.submit(
            zs::Request::slice(zi::AnyImage(slices[idx].raw), kPrompt)));
      }
      service.resume();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const zs::Response r = futures[i].get();
        ASSERT_TRUE(r.ok()) << "batch=" << max_batch << " fanout=" << fanout
                            << " err=" << r.error;
        ASSERT_TRUE(r.slice.has_value());
        expect_masks_equal(r.slice->mask, expected[i].mask);
        EXPECT_EQ(r.slice->primary_box, expected[i].primary_box);
        EXPECT_EQ(r.slice->confidence, expected[i].confidence);
      }
      const zs::ServiceStats st = service.stats();
      EXPECT_EQ(st.completed, traffic.size());
      EXPECT_EQ(st.admitted, traffic.size());
      if (max_batch > 1) EXPECT_LT(st.batches, traffic.size());
    }
  }
}

TEST(Serve, BoxMultiAndVolumeMatchBlockingPipeline) {
  const auto s = make_slice(64, 7);
  const auto vol = make_volume();
  const zc::ZenesisPipeline reference;

  zs::SegmentService service;
  auto f_box = service.submit(zs::Request::boxed(
      zi::AnyImage(s.raw), {8, 8, 48, 40}, zc::BoxPromptOptions{kPrompt, {}}));
  auto f_multi = service.submit(zs::Request::multi_object(
      zi::AnyImage(s.raw), {kPrompt, "dark holder"}));
  auto f_vol = service.submit(zs::Request::volume_batch(vol.volume, kPrompt));

  const zc::SliceResult want_box = reference.segment_with_box(
      reference.make_ready(zi::AnyImage(s.raw)), {8, 8, 48, 40},
      zc::BoxPromptOptions{kPrompt, {}});
  const auto want_multi =
      reference.segment_multi(zi::AnyImage(s.raw), {kPrompt, "dark holder"});
  const zc::VolumeResult want_vol =
      reference.segment_volume(zc::VolumeRequest::view(vol.volume, kPrompt));

  const zs::Response r_box = f_box.get();
  ASSERT_TRUE(r_box.ok());
  expect_masks_equal(r_box.slice->mask, want_box.mask);

  const zs::Response r_multi = f_multi.get();
  ASSERT_TRUE(r_multi.ok());
  ASSERT_TRUE(r_multi.multi.has_value());
  const auto& got_labels = r_multi.multi->labels;
  for (std::int64_t y = 0; y < got_labels.height(); ++y) {
    for (std::int64_t x = 0; x < got_labels.width(); ++x) {
      ASSERT_EQ(got_labels.at(x, y), want_multi.labels.at(x, y));
    }
  }

  const zs::Response r_vol = f_vol.get();
  ASSERT_TRUE(r_vol.ok());
  ASSERT_TRUE(r_vol.volume.has_value());
  ASSERT_EQ(r_vol.volume->slices.size(), want_vol.slices.size());
  for (std::size_t z = 0; z < want_vol.slices.size(); ++z) {
    expect_masks_equal(r_vol.volume->slices[z].mask, want_vol.slices[z].mask);
  }
  EXPECT_EQ(r_vol.volume->replaced_count, want_vol.replaced_count);
}

// (b) Bounded admission: a full queue rejects, nothing blocks or drops.
TEST(Serve, FullQueueRejectsInsteadOfBlocking) {
  const auto s = make_slice(48, 5);
  zs::ServiceConfig cfg;
  cfg.queue_capacity = 3;
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  std::vector<std::future<zs::Response>> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(
        service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt)));
  }
  EXPECT_EQ(service.queue_depth(), 3u);

  auto overflow =
      service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // rejected immediately, no block
  const zs::Response r = overflow.get();
  EXPECT_EQ(r.status, zs::Response::Status::kRejected);
  EXPECT_EQ(r.reject, zs::RejectReason::kQueueFull);

  service.resume();
  for (auto& f : admitted) EXPECT_TRUE(f.get().ok());  // nothing dropped
  const zs::ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected_queue_full, 1u);
  EXPECT_EQ(st.admitted, 3u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.queue_depth_high_water, 3u);
}

// (c) Expired deadlines never reach the pipeline.
TEST(Serve, ExpiredDeadlineCompletesWithoutRunningPipeline) {
  const auto s = make_slice(48, 6);
  zs::ServiceConfig cfg;
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  // Already expired at submit.
  auto pre = service.submit(
      zs::Request::slice(zi::AnyImage(s.raw), kPrompt)
          .with_deadline(zs::Clock::now() - std::chrono::milliseconds(1)));
  EXPECT_EQ(pre.get().reject, zs::RejectReason::kDeadlineExpired);

  // Expires while queued (dispatch paused past the deadline).
  auto queued = service.submit(
      zs::Request::slice(zi::AnyImage(s.raw), kPrompt)
          .with_deadline_in(std::chrono::milliseconds(20)));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  service.resume();
  const zs::Response r = queued.get();
  EXPECT_EQ(r.status, zs::Response::Status::kRejected);
  EXPECT_EQ(r.reject, zs::RejectReason::kDeadlineExpired);

  const zs::ServiceStats st = service.stats();
  EXPECT_EQ(st.expired, 2u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.decode_us.count(), 0u);  // the pipeline never ran
}

// (d) Shutdown drains admitted work, then rejects.
TEST(Serve, ShutdownDrainsInFlightAndRejectsNew) {
  const auto s = make_slice(48, 8);
  zs::ServiceConfig cfg;
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  std::vector<std::future<zs::Response>> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(
        service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt)));
  }
  service.shutdown();  // overrides pause; must drain all four

  for (auto& f : admitted) {
    const zs::Response r = f.get();
    EXPECT_TRUE(r.ok()) << r.error;
  }
  auto late = service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  const zs::Response r = late.get();
  EXPECT_EQ(r.status, zs::Response::Status::kRejected);
  EXPECT_EQ(r.reject, zs::RejectReason::kShuttingDown);
  const zs::ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.rejected_shutting_down, 1u);
  service.shutdown();  // idempotent
}

TEST(Serve, CancelTokenRejectsBeforeDispatch) {
  const auto s = make_slice(48, 9);
  zs::ServiceConfig cfg;
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  auto token = std::make_shared<zs::CancelToken>();
  auto cancelled = service.submit(
      zs::Request::slice(zi::AnyImage(s.raw), kPrompt).with_cancel(token));
  auto kept =
      service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  token->cancel();
  service.resume();

  EXPECT_EQ(cancelled.get().reject, zs::RejectReason::kCancelled);
  EXPECT_TRUE(kept.get().ok());
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(Serve, PriorityJumpsTheQueue) {
  const auto s = make_slice(48, 10);
  zs::ServiceConfig cfg;
  cfg.max_batch = 1;  // dispatch one at a time → completion order observable
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  auto low = service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  auto high = service.submit(
      zs::Request::slice(zi::AnyImage(s.raw), kPrompt).with_priority(5));
  service.resume();
  const zs::Response r_high = high.get();
  const zs::Response r_low = low.get();
  ASSERT_TRUE(r_high.ok());
  ASSERT_TRUE(r_low.ok());
  // The urgent request dispatched first: it spent less time queued.
  EXPECT_LT(r_high.total_us, r_low.total_us);
}

TEST(Serve, PublishesStatsIntoDashboardViaSession) {
  const auto s = make_slice(48, 11);
  zc::Session session;
  zs::SegmentService service;
  service.attach_to(session);

  service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt)).get();
  // mode_c_evaluate must fold service counters in automatically — no
  // explicit publish_runtime_stats call.
  const auto result = session.mode_a_segment(zi::AnyImage(s.raw), kPrompt);
  session.mode_c_evaluate("synthetic", "zenesis", 0, result.mask,
                          s.ground_truth);
  const auto& stats = session.dashboard().stats();
  ASSERT_TRUE(stats.count("serve_completed"));
  EXPECT_EQ(stats.at("serve_completed"), 1.0);
  ASSERT_TRUE(stats.count("serve_total_us_p50"));
  EXPECT_GT(stats.at("serve_total_us_p50"), 0.0);
  ASSERT_TRUE(stats.count("feature_cache_hits"));
  // No clear_stats_sources needed: attach_to is a scoped registration.
}

// Regression: attach_to must not leave a dangling source behind — a
// session outliving the service skips (and prunes) the dead registration,
// so mode_c_evaluate after the service dies is safe (verified under ASAN).
TEST(Serve, SessionOutlivingServiceSkipsDeadStatsSource) {
  const auto s = make_slice(48, 13);
  zc::Session session;
  {
    zs::SegmentService service;
    service.attach_to(session);
    service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt)).get();
    session.publish_runtime_stats();
    EXPECT_TRUE(session.dashboard().stats().count("serve_completed"));
  }  // service destroyed first — the old ordering bug
  const auto result = session.mode_a_segment(zi::AnyImage(s.raw), kPrompt);
  session.mode_c_evaluate("synthetic", "zenesis", 0, result.mask,
                          s.ground_truth);  // must not touch freed memory
  // The stale serve_* values from the last live publish remain readable.
  EXPECT_TRUE(session.dashboard().stats().count("serve_completed"));
}

// Regression: a malformed request inside a micro-batch fails with kError
// instead of throwing through the fan-out and terminating the dispatcher;
// healthy requests in the same batch are unaffected.
TEST(Serve, MalformedSliceRequestFailsWithoutKillingTheBatch) {
  const auto s = make_slice(48, 14);
  zs::ServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.start_paused = true;  // both requests join one micro-batch
  zs::SegmentService service(cfg);

  auto bad = service.submit(zs::Request::slice(zi::AnyImage(), kPrompt));
  auto good = service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  service.resume();

  const zs::Response rb = bad.get();
  EXPECT_EQ(rb.status, zs::Response::Status::kError);
  EXPECT_FALSE(rb.error.ok());
  EXPECT_FALSE(rb.error.message.empty());
  EXPECT_EQ(rb.error.stage, "serve.readiness");
  const zs::Response rg = good.get();
  EXPECT_TRUE(rg.ok()) << rg.error;

  const zs::ServiceStats st = service.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 1u);

  // The dispatcher survived: the service still serves.
  EXPECT_TRUE(service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt))
                  .get()
                  .ok());
}

// Regression: cancelling queued work frees its queue slot — a full queue
// purges cancelled entries at admission instead of rejecting QueueFull.
TEST(Serve, CancellationRelievesQueueFullBackpressure) {
  const auto s = make_slice(48, 15);
  zs::ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;
  zs::SegmentService service(cfg);

  auto token = std::make_shared<zs::CancelToken>();
  auto doomed = service.submit(
      zs::Request::slice(zi::AnyImage(s.raw), kPrompt).with_cancel(token));
  auto kept = service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));

  // Queue full, nothing cancelled yet: still an explicit rejection.
  const zs::Response full =
      service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt)).get();
  EXPECT_EQ(full.reject, zs::RejectReason::kQueueFull);

  token->cancel();
  // Admission purges the cancelled entry, so this submission is admitted
  // even though dispatch is still paused.
  auto after = service.submit(zs::Request::slice(zi::AnyImage(s.raw), kPrompt));
  EXPECT_EQ(doomed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(doomed.get().reject, zs::RejectReason::kCancelled);

  service.resume();
  EXPECT_TRUE(kept.get().ok());
  EXPECT_TRUE(after.get().ok());
  const zs::ServiceStats st = service.stats();
  EXPECT_EQ(st.rejected_queue_full, 1u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 2u);
}

TEST(Serve, InvalidConfigSurfacesEveryMessage) {
  zs::ServiceConfig cfg;
  cfg.queue_capacity = 0;
  cfg.pipeline.max_boxes = 0;
  cfg.pipeline.heuristic.window = 0;
  const auto issues = cfg.validate();
  EXPECT_EQ(issues.size(), 3u);
  try {
    zs::SegmentService service(cfg);
    FAIL() << "construction must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("queue_capacity"), std::string::npos);
    EXPECT_NE(msg.find("max_boxes"), std::string::npos);
    EXPECT_NE(msg.find("heuristic.window"), std::string::npos);
  }
}

TEST(ServeHistogram, PercentilesTrackSamples) {
  zenesis::serve::Histogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Geometric buckets (ratio 1.25) bound relative error to ~25%.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 135.0);
  EXPECT_NEAR(h.percentile(95.0), 950.0, 240.0);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 250.0);
  EXPECT_LE(h.percentile(100.0), 1000.0 + 1e-9);
}
