// zen_net contract tests (ISSUE-9 acceptance list):
//   (a) the wire codec round-trips every frame shape and rejects malformed
//       framing without crashes or over-allocation,
//   (b) responses served over the wire are byte-identical to direct
//       SegmentService::submit calls (slice in every pixel format, and a
//       Mode-B volume_file request streamed from a real TIFF),
//   (c) trace ids flow from the client frame through obs spans and back,
//   (d) per-tenant weighted fairness and shed-before-QueueFull admission,
//   (e) connection counters surface in NetStats, ServiceStats and the
//       Mode-C dashboard.
// The fault-injection and fuzz suites live in test_net_faults.cpp and
// test_net_fuzz.cpp; the thousand-client soak in test_net_soak.cpp.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/io/tiff.hpp"
#include "zenesis/net/client.hpp"
#include "zenesis/net/frame.hpp"
#include "zenesis/net/server.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/serve/service.hpp"

namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zn = zenesis::net;
namespace zo = zenesis::obs;
namespace zs = zenesis::serve;

using namespace std::chrono_literals;

namespace {

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

zf::SyntheticSlice make_slice(std::int64_t size, std::uint64_t seed) {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = seed;
  return zf::generate_slice(cfg, 0);
}

void expect_masks_equal(const zi::Mask& a, const zi::Mask& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "pixel " << i;
  }
}

/// Feeds encoded bytes through a fresh decoder and returns the one frame.
zn::Frame decode_one(const std::vector<std::uint8_t>& bytes,
                     const zn::NetLimits& limits = {}) {
  zn::FrameDecoder decoder(limits);
  decoder.feed(bytes.data(), bytes.size());
  zn::Frame frame;
  EXPECT_EQ(decoder.next(frame), zn::FrameDecoder::Status::kFrame);
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

}  // namespace

// (a) Codec round trips.
TEST(NetFrame, HelloCancelPingRoundTrip) {
  const zn::Frame hello = decode_one(zn::encode_hello(42, 7));
  EXPECT_EQ(hello.header.type,
            static_cast<std::uint16_t>(zn::FrameType::kHello));
  const auto parsed = zn::parse_hello(hello);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tenant, 42u);
  EXPECT_EQ(parsed->flags, 7u);

  const zn::Frame cancel = decode_one(zn::encode_cancel(1234));
  EXPECT_EQ(cancel.header.type,
            static_cast<std::uint16_t>(zn::FrameType::kCancel));
  EXPECT_EQ(cancel.header.request_id, 1234u);
  EXPECT_TRUE(cancel.payload.empty());

  const std::vector<std::uint8_t> blob = {1, 2, 3, 0xFF};
  const zn::Frame ping = decode_one(zn::encode_ping(blob));
  EXPECT_EQ(ping.payload, blob);
}

TEST(NetFrame, SliceRequestRoundTripsEveryPixelFormat) {
  zn::WireRequestOptions opts;
  opts.priority = -3;
  opts.deadline_ms = 2500;
  opts.trace_id = 0xCAFEF00Dull;

  const auto check = [&](zi::AnyImage img) {
    const zn::Frame frame =
        decode_one(zn::encode_slice_request(9, img, "porous carbon", opts));
    EXPECT_EQ(frame.header.request_id, 9u);
    const auto parsed = zn::parse_slice_request(frame, zn::NetLimits{});
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->prompt, "porous carbon");
    EXPECT_EQ(parsed->options.priority, -3);
    EXPECT_EQ(parsed->options.deadline_ms, 2500u);
    EXPECT_EQ(parsed->options.trace_id, 0xCAFEF00Dull);
    EXPECT_EQ(parsed->image.index(), img.index());
    std::visit(
        [&](const auto& got) {
          std::visit(
              [&](const auto& want) {
                ASSERT_EQ(got.width(), want.width());
                ASSERT_EQ(got.height(), want.height());
                ASSERT_EQ(got.channels(), want.channels());
                const auto gp = got.pixels();
                const auto wp = want.pixels();
                ASSERT_EQ(gp.size(), wp.size());
                for (std::size_t i = 0; i < gp.size(); ++i) {
                  ASSERT_EQ(std::memcmp(&gp[i], &wp[i], sizeof(gp[i])), 0);
                }
              },
              img);
        },
        parsed->image);
  };

  zi::ImageU8 u8(5, 4, 2);
  for (std::size_t i = 0; i < u8.pixels().size(); ++i) {
    u8.pixels()[i] = static_cast<std::uint8_t>(i * 7);
  }
  zi::ImageU16 u16(6, 3);
  for (std::size_t i = 0; i < u16.pixels().size(); ++i) {
    u16.pixels()[i] = static_cast<std::uint16_t>(i * 517);
  }
  zi::ImageU32 u32(3, 3);
  for (std::size_t i = 0; i < u32.pixels().size(); ++i) {
    u32.pixels()[i] = static_cast<std::uint32_t>(i * 100003);
  }
  zi::ImageF32 f32(4, 2);
  for (std::size_t i = 0; i < f32.pixels().size(); ++i) {
    f32.pixels()[i] = static_cast<float>(i) * 0.37f - 1.0f;
  }
  check(zi::AnyImage(u8));
  check(zi::AnyImage(u16));
  check(zi::AnyImage(u32));
  check(zi::AnyImage(f32));
}

TEST(NetFrame, VolumeFileRequestAndServerFramesRoundTrip) {
  zn::WireRequestOptions opts;
  opts.priority = 5;
  const zn::Frame req = decode_one(
      zn::encode_volume_file_request(77, "/tmp/stack.tif", kPrompt, opts));
  const auto parsed = zn::parse_volume_file_request(req, zn::NetLimits{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->path, "/tmp/stack.tif");
  EXPECT_EQ(parsed->prompt, kPrompt);
  EXPECT_EQ(parsed->options.priority, 5);

  zenesis::core::Error err;
  err.code = zenesis::core::ErrorCode::kQueueFull;
  err.stage = "net.admission";
  err.message = "tenant quota";
  const zn::Frame rej = decode_one(
      zn::encode_rejected(31, 0xAB, zn::WireReject::kTenantQuota, err));
  const auto rmsg = zn::parse_server_frame(rej, zn::NetLimits{});
  ASSERT_TRUE(rmsg.has_value());
  EXPECT_EQ(rmsg->type, zn::FrameType::kRejected);
  EXPECT_EQ(rmsg->request_id, 31u);
  EXPECT_EQ(rmsg->trace_id, 0xABu);
  EXPECT_EQ(rmsg->reject, zn::WireReject::kTenantQuota);
  EXPECT_EQ(rmsg->error.code, zenesis::core::ErrorCode::kQueueFull);
  EXPECT_EQ(rmsg->error.stage, "net.admission");
  EXPECT_EQ(rmsg->error.message, "tenant quota");

  const zn::Frame emsg_frame = decode_one(zn::encode_error(0, 0, err));
  const auto emsg = zn::parse_server_frame(emsg_frame, zn::NetLimits{});
  ASSERT_TRUE(emsg.has_value());
  EXPECT_EQ(emsg->type, zn::FrameType::kError);
  EXPECT_EQ(emsg->error.message, "tenant quota");
}

TEST(NetFrame, DecoderIsIncremental) {
  const std::vector<std::uint8_t> bytes = zn::encode_hello(3);
  zn::FrameDecoder decoder{zn::NetLimits{}};
  zn::Frame frame;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(decoder.next(frame), zn::FrameDecoder::Status::kNeedMore);
    decoder.feed(&bytes[i], 1);
  }
  EXPECT_EQ(decoder.next(frame), zn::FrameDecoder::Status::kFrame);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(NetFrame, DecoderRejectsMalformedFraming) {
  const auto expect_error = [](std::vector<std::uint8_t> bytes,
                               zn::WireErrorKind kind) {
    zn::FrameDecoder decoder{zn::NetLimits{}};
    decoder.feed(bytes.data(), bytes.size());
    zn::Frame frame;
    EXPECT_EQ(decoder.next(frame), zn::FrameDecoder::Status::kError);
    EXPECT_EQ(decoder.error_kind(), kind);
    // Errors latch: the stream is unframeable past a bad header.
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_EQ(decoder.next(frame), zn::FrameDecoder::Status::kError);
  };

  auto bad_magic = zn::encode_hello(1);
  bad_magic[0] ^= 0xFF;
  expect_error(std::move(bad_magic), zn::WireErrorKind::kBadMagic);

  auto bad_version = zn::encode_hello(1);
  bad_version[4] = 0x77;
  expect_error(std::move(bad_version), zn::WireErrorKind::kBadVersion);

  auto bad_type = zn::encode_hello(1);
  bad_type[6] = 0xEE;
  bad_type[7] = 0xEE;
  expect_error(std::move(bad_type), zn::WireErrorKind::kBadType);

  // payload_len = 0xFFFFFFFF must be rejected from the header alone,
  // before any buffering (the TiffReadLimits treatment).
  auto oversized = zn::encode_hello(1);
  oversized[16] = oversized[17] = oversized[18] = oversized[19] = 0xFF;
  expect_error(std::move(oversized), zn::WireErrorKind::kOversized);
}

// --- live server tests ---------------------------------------------------

TEST(Net, HelloAndPingPong) {
  zs::ServiceConfig scfg;
  zs::SegmentService service(scfg);
  zn::Server server(service);
  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);

  ASSERT_TRUE(client.hello(42));
  EXPECT_TRUE(client.ping({0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_TRUE(client.ping({}));

  server.stop();
  const zn::NetStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// (b) Wire responses byte-identical to direct submits.
TEST(Net, SliceResponsesMatchDirectSubmit) {
  const auto s16 = make_slice(48, 21);
  zi::ImageU8 u8(32, 32);
  for (std::size_t i = 0; i < u8.pixels().size(); ++i) {
    u8.pixels()[i] = static_cast<std::uint8_t>((i * 13) % 251);
  }
  zi::ImageF32 f32(32, 32);
  for (std::size_t i = 0; i < f32.pixels().size(); ++i) {
    f32.pixels()[i] = static_cast<float>((i * 29) % 97) / 97.0f;
  }
  const std::vector<zi::AnyImage> images = {
      zi::AnyImage(s16.raw), zi::AnyImage(u8), zi::AnyImage(f32)};

  zs::SegmentService service;
  zn::Server server(service);
  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));

  for (const zi::AnyImage& img : images) {
    const zs::Response want =
        service.submit(zs::Request::slice(img, kPrompt)).get();
    ASSERT_TRUE(want.ok());

    const std::uint64_t rid = client.submit_slice(img, kPrompt);
    ASSERT_NE(rid, 0u);
    const auto got = client.wait_for(rid);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->type, zn::FrameType::kResponse) << got->error.message;
    EXPECT_EQ(got->request_id, rid);
    expect_masks_equal(got->mask, want.slice->mask);
    EXPECT_EQ(got->box, want.slice->primary_box);
    EXPECT_EQ(got->confidence, want.slice->confidence);
    EXPECT_GT(got->total_us, 0.0);
  }
  server.stop();
}

TEST(Net, VolumeFileResponseMatchesDirectSubmit) {
  zf::SynthConfig vcfg;
  vcfg.type = zf::SampleType::kCrystalline;
  vcfg.width = 40;
  vcfg.height = 40;
  vcfg.depth = 3;
  vcfg.seed = 5;
  const zf::SyntheticVolume vol = zf::generate_volume(vcfg);
  const std::string path = "test_net_volume.tif";
  zenesis::io::write_volume_tiff(path, vol.volume);

  zs::SegmentService service;
  const zs::Response want =
      service.submit(zs::Request::volume_file(path, kPrompt)).get();
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(want.volume.has_value());

  zn::Server server(service);
  auto [client, server_fd] = zn::Client::loopback_pair();
  server.adopt(server_fd);
  ASSERT_TRUE(client.hello(1));
  const std::uint64_t rid = client.submit_volume_file(path, kPrompt);
  ASSERT_NE(rid, 0u);
  const auto got = client.wait_for(rid, 60000ms);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->type, zn::FrameType::kResponse) << got->error.message;
  const std::vector<zi::Mask> want_masks = want.volume->masks();
  ASSERT_EQ(got->volume_masks.size(), want_masks.size());
  for (std::size_t z = 0; z < got->volume_masks.size(); ++z) {
    expect_masks_equal(got->volume_masks[z], want_masks[z]);
  }
  EXPECT_EQ(got->replaced_count, want.volume->replaced_count);
  server.stop();
  std::remove(path.c_str());
}

// (c) Trace ids flow wire → obs spans → terminal frame.
TEST(Net, TraceIdPropagatesThroughSpans) {
  zo::set_enabled(true);
  zo::TraceCollector::global().clear();
  const std::uint64_t kTraceId = 0x5EEDF00Dull;

  {
    zs::SegmentService service;
    zn::Server server(service);
    auto [client, server_fd] = zn::Client::loopback_pair();
    server.adopt(server_fd);
    ASSERT_TRUE(client.hello(9));
    zn::WireRequestOptions opts;
    opts.trace_id = kTraceId;
    const std::uint64_t rid =
        client.submit_slice(zi::AnyImage(make_slice(32, 3).raw), kPrompt, opts);
    const auto got = client.wait_for(rid);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->type, zn::FrameType::kResponse);
    EXPECT_EQ(got->trace_id, kTraceId);  // client-chosen id echoed back
    server.stop();
  }

  // The wire-level span and the service's spans carry the same id — the
  // whole request stitches into one trace.
  bool saw_net_request = false;
  bool saw_service_span = false;
  for (const zo::SpanEvent& ev : zo::TraceCollector::global().snapshot()) {
    if (ev.trace_id != kTraceId) continue;
    const std::string name = ev.name;
    if (name == "net.request") saw_net_request = true;
    if (name.rfind("serve.", 0) == 0 || name == "net.submit") {
      saw_service_span = true;
    }
  }
  zo::set_enabled(false);
  EXPECT_TRUE(saw_net_request);
  EXPECT_TRUE(saw_service_span);
}

// (d) Weighted round-robin fairness across tenants.
TEST(Net, WeightedFairnessUnderSaturation) {
  zs::ServiceConfig scfg;
  zs::SegmentService service(scfg);
  zn::ServerConfig ncfg;
  ncfg.tenants[1] = {1, 256};  // weight 1
  ncfg.tenants[2] = {3, 256};  // weight 3
  ncfg.start_bridge_paused = true;
  zn::Server server(service, ncfg);

  auto [c1, fd1] = zn::Client::loopback_pair();
  auto [c2, fd2] = zn::Client::loopback_pair();
  server.adopt(fd1);
  server.adopt(fd2);
  ASSERT_TRUE(c1.hello(1));
  ASSERT_TRUE(c2.hello(2));

  const auto img = zi::AnyImage(make_slice(24, 8).raw);
  std::vector<std::uint64_t> rids1, rids2;
  for (int i = 0; i < 8; ++i) rids1.push_back(c1.submit_slice(img, kPrompt));
  for (int i = 0; i < 8; ++i) rids2.push_back(c2.submit_slice(img, kPrompt));
  // All 16 must be net-queued before the bridge runs: fairness is then a
  // pure function of the WRR policy, not arrival timing.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.backlog() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(server.backlog(), 16u);
  server.resume_bridge();

  for (const std::uint64_t rid : rids1) {
    const auto r = c1.wait_for(rid);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->type, zn::FrameType::kResponse);
  }
  for (const std::uint64_t rid : rids2) {
    const auto r = c2.wait_for(rid);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->type, zn::FrameType::kResponse);
  }

  const zn::NetStats stats = server.stats();
  ASSERT_GE(stats.submission_log.size(), 8u);
  // While both queues are saturated, every window of 4 submissions is
  // 1× tenant-1 + 3× tenant-2 (weights 1:3), starting with tenant 1.
  int t1 = 0, t2 = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (stats.submission_log[i] == 1) ++t1;
    if (stats.submission_log[i] == 2) ++t2;
  }
  EXPECT_EQ(t1, 2);
  EXPECT_EQ(t2, 6);
  EXPECT_EQ(stats.submission_log[0], 1u);  // rotation starts at tenant 1
  ASSERT_NE(stats.tenants.count(1), 0u);
  ASSERT_NE(stats.tenants.count(2), 0u);
  EXPECT_EQ(stats.tenants.at(1).completed, 8u);
  EXPECT_EQ(stats.tenants.at(2).completed, 8u);
  server.stop();
}

// (d) Load shedding happens at net admission, never as service QueueFull.
TEST(Net, ShedsBeforeServiceSeesQueueFull) {
  zs::ServiceConfig scfg;
  zs::SegmentService service(scfg);
  zn::ServerConfig ncfg;
  ncfg.tenants[1] = {1, 2};  // quota: 2 queued requests
  ncfg.shed_backlog = 3;     // global cap across tenants
  ncfg.start_bridge_paused = true;
  zn::Server server(service, ncfg);

  auto [c1, fd1] = zn::Client::loopback_pair();
  auto [c2, fd2] = zn::Client::loopback_pair();
  server.adopt(fd1);
  server.adopt(fd2);
  ASSERT_TRUE(c1.hello(1));
  ASSERT_TRUE(c2.hello(2));
  const auto img = zi::AnyImage(make_slice(24, 4).raw);

  // Tenant 1 fills its quota of 2, then sheds with TenantQuota.
  const std::uint64_t a = c1.submit_slice(img, kPrompt);
  const std::uint64_t b = c1.submit_slice(img, kPrompt);
  const std::uint64_t over_quota = c1.submit_slice(img, kPrompt);
  const auto rq = c1.wait_for(over_quota);
  ASSERT_TRUE(rq.has_value());
  EXPECT_EQ(rq->type, zn::FrameType::kRejected);
  EXPECT_EQ(rq->reject, zn::WireReject::kTenantQuota);

  // Tenant 2 pushes the global backlog to shed_backlog, then sheds with
  // Overloaded.
  const std::uint64_t c = c2.submit_slice(img, kPrompt);
  const std::uint64_t overload = c2.submit_slice(img, kPrompt);
  const auto ro = c2.wait_for(overload);
  ASSERT_TRUE(ro.has_value());
  EXPECT_EQ(ro->type, zn::FrameType::kRejected);
  EXPECT_EQ(ro->reject, zn::WireReject::kOverloaded);

  server.resume_bridge();
  for (const std::uint64_t rid : {a, b}) {
    const auto r = c1.wait_for(rid);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->type, zn::FrameType::kResponse);
  }
  {
    const auto r = c2.wait_for(c);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->type, zn::FrameType::kResponse);
  }
  server.stop();

  const zn::NetStats nstats = server.stats();
  EXPECT_EQ(nstats.shed_tenant_quota, 1u);
  EXPECT_EQ(nstats.shed_overloaded, 1u);
  const zs::ServiceStats sstats = service.stats();
  // The whole point of net-level admission: the service's QueueFull
  // backstop never fires for wire traffic.
  EXPECT_EQ(sstats.rejected_queue_full, 0u);
  EXPECT_EQ(sstats.requests_shed, 2u);
}

// (e) Counters: NetStats, ServiceStats connection block, dashboard keys.
TEST(Net, StatsFlowIntoServiceAndDashboard) {
  zenesis::core::Session session;
  zs::SegmentService service;
  service.attach_to(session);
  zn::Server server(service);
  server.attach_to(session);

  {
    auto [client, server_fd] = zn::Client::loopback_pair();
    server.adopt(server_fd);
    ASSERT_TRUE(client.hello(4));
    const std::uint64_t rid =
        client.submit_slice(zi::AnyImage(make_slice(24, 2).raw), kPrompt);
    const auto r = client.wait_for(rid);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->type, zn::FrameType::kResponse);
  }  // client destructor closes the connection

  // Wait until the event loop notices the disconnect.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (service.stats().connections_active > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }

  const zs::ServiceStats sstats = service.stats();
  EXPECT_EQ(sstats.connections_accepted, 1u);
  EXPECT_EQ(sstats.connections_active, 0u);

  session.publish_runtime_stats();
  const auto& published = session.dashboard().stats();
  ASSERT_NE(published.count("net_connections_accepted"), 0u);
  EXPECT_EQ(published.at("net_connections_accepted"), 1.0);
  ASSERT_NE(published.count("net_responses_sent"), 0u);
  EXPECT_EQ(published.at("net_responses_sent"), 1.0);
  ASSERT_NE(published.count("net_wire_us_p50"), 0u);
  ASSERT_NE(published.count("serve_connections_accepted"), 0u);
  EXPECT_EQ(published.at("serve_connections_accepted"), 1.0);

  server.stop();
  const zn::NetStats nstats = server.stats();
  EXPECT_EQ(nstats.requests_received, 1u);
  EXPECT_EQ(nstats.responses_sent, 1u);
  EXPECT_EQ(nstats.frames_in, 2u);  // hello + slice request
  EXPECT_GE(nstats.bytes_in, 2u * zn::kHeaderBytes);
}

TEST(Net, ConfigValidationSurfacesEveryIssue) {
  zn::ServerConfig cfg;
  cfg.max_connections = 0;
  cfg.shed_backlog = 0;
  cfg.partial_frame_timeout = std::chrono::milliseconds(0);
  cfg.tenants[3] = {0, 0};
  const auto issues = cfg.validate();
  EXPECT_GE(issues.size(), 4u);
  zs::SegmentService service;
  EXPECT_THROW(zn::Server(service, cfg), std::invalid_argument);
}

TEST(Net, TcpListenerServesClients) {
  zs::SegmentService service;
  zn::Server server(service);
  std::uint16_t port = 0;
  try {
    port = server.listen_tcp(0);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "loopback TCP unavailable in this environment";
  }
  ASSERT_NE(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  zn::Client client(fd);
  ASSERT_TRUE(client.hello(11));
  const std::uint64_t rid =
      client.submit_slice(zi::AnyImage(make_slice(24, 6).raw), kPrompt);
  const auto r = client.wait_for(rid);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, zn::FrameType::kResponse);
  server.stop();
}
