// Table/CSV/JSON report writer tests.
#include <gtest/gtest.h>

#include "zenesis/io/report.hpp"

namespace zio = zenesis::io;

TEST(Table, CsvEscapesSpecialCharacters) {
  zio::Table t({"name", "value"});
  t.add_row({std::string("with,comma"), std::int64_t{1}});
  t.add_row({std::string("with \"quote\""), 2.5});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, CsvHeaderFirst) {
  zio::Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  EXPECT_EQ(t.to_csv().substr(0, 4), "a,b\n");
}

TEST(Table, RowCellCountValidated) {
  zio::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Table, EmptyColumnsRejected) {
  EXPECT_THROW(zio::Table({}), std::invalid_argument);
}

TEST(Table, AsciiAlignsColumns) {
  zio::Table t({"metric", "v"});
  t.add_row({std::string("accuracy"), 0.987});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| accuracy |"), std::string::npos);
  EXPECT_NE(ascii.find("+"), std::string::npos);
}

TEST(FormatCell, DoublesUseSixSignificantDigits) {
  EXPECT_EQ(zio::format_cell(0.123456789), "0.123457");
  EXPECT_EQ(zio::format_cell(std::int64_t{42}), "42");
  EXPECT_EQ(zio::format_cell(std::string("x")), "x");
}

TEST(Json, ScalarsAndEscapes) {
  zio::JsonObject o;
  o.set("name", std::string("line\nbreak \"q\""));
  o.set("count", std::int64_t{3});
  o.set("score", 0.5);
  const std::string s = o.to_string();
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_NE(s.find("\\\"q\\\""), std::string::npos);
  EXPECT_NE(s.find("\"count\": 3"), std::string::npos);
}

TEST(Json, NestedArrays) {
  zio::JsonObject child;
  child.set("slice", std::int64_t{0});
  zio::JsonObject root;
  root.set_array("items", {child});
  const std::string s = root.to_string();
  EXPECT_NE(s.find("\"items\": [{"), std::string::npos);
}

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(zio::json_escape("hello"), "hello");
  EXPECT_EQ(zio::json_escape("a\\b"), "a\\\\b");
}
