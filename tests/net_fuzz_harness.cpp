#include "tests/net_fuzz_harness.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <span>
#include <utility>

#include "zenesis/net/client.hpp"
#include "zenesis/net/server.hpp"

namespace zenesis::net::fuzz {
namespace {

using Clock = std::chrono::steady_clock;

// --- deterministic RNG (SplitMix64, same as tiff_fuzz_harness) ----------

struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// --- corpus -------------------------------------------------------------

template <typename T>
image::Image<T> pattern_image(std::int64_t w, std::int64_t h) {
  image::Image<T> img(w, h);
  const std::span<T> px = img.pixels();
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = static_cast<T>(i * 37 + 11);
  }
  return img;
}

/// Appends `frame` to `entry`, recording its start offset.
void push_frame(CorpusEntry& entry, std::vector<std::uint8_t> frame) {
  entry.offsets.push_back(entry.bytes.size());
  entry.bytes.insert(entry.bytes.end(), frame.begin(), frame.end());
}

constexpr const char* kPrompt = "needle crystal";

// Header field byte offsets within a frame (see frame.hpp).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 6;
constexpr std::size_t kOffRequestId = 8;
constexpr std::size_t kOffPayloadLen = 16;

void put_u16(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v) {
  if (off + 2 > b.size()) return;
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v) {
  if (off + 4 > b.size()) return;
  for (int i = 0; i < 4; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v) {
  if (off + 8 > b.size()) return;
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint16_t frame_type_at(const CorpusEntry& entry, std::size_t frame_idx) {
  const std::size_t off = entry.offsets[frame_idx] + kOffType;
  if (off + 2 > entry.bytes.size()) return 0;
  return static_cast<std::uint16_t>(entry.bytes[off] |
                                    (entry.bytes[off + 1] << 8));
}

// --- mutation engine -----------------------------------------------------

/// Produces one mutant byte stream from `entry`. Structure-aware: most
/// mutations target a frame boundary or a known header/payload field.
std::vector<std::uint8_t> mutate(const CorpusEntry& entry, Rng& rng) {
  std::vector<std::uint8_t> bytes = entry.bytes;
  const std::size_t n_frames = entry.offsets.size();
  const std::size_t frame_idx = rng.below(n_frames);
  const std::size_t frame_off = entry.offsets[frame_idx];

  switch (rng.below(9)) {
    case 0:  // corrupt magic
      put_u32(bytes, frame_off + kOffMagic, static_cast<std::uint32_t>(rng.next()));
      break;
    case 1:  // corrupt version
      put_u16(bytes, frame_off + kOffVersion,
              static_cast<std::uint16_t>(rng.next()));
      break;
    case 2:  // corrupt frame type (unknown or server-direction values)
      put_u16(bytes, frame_off + kOffType,
              static_cast<std::uint16_t>(rng.below(64)));
      break;
    case 3: {  // payload length: zero / huge / 0xFFFFFFFF / off-by-some
      const std::uint32_t lens[] = {
          0u, 1u, 0xFFFFFFFFu, 0x7FFFFFFFu, 1u << 30,
          static_cast<std::uint32_t>(rng.below(1u << 20))};
      put_u32(bytes, frame_off + kOffPayloadLen,
              lens[rng.below(sizeof(lens) / sizeof(lens[0]))]);
      break;
    }
    case 4: {  // truncate: mid-header, mid-payload or mid-stream
      const std::size_t cut = rng.below(bytes.size()) + 1;
      bytes.resize(cut);
      break;
    }
    case 5: {  // duplicate one frame (duplicate request ids, double hello)
      const std::size_t end = frame_idx + 1 < n_frames
                                  ? entry.offsets[frame_idx + 1]
                                  : entry.bytes.size();
      std::vector<std::uint8_t> frame(entry.bytes.begin() + static_cast<std::ptrdiff_t>(frame_off),
                                      entry.bytes.begin() + static_cast<std::ptrdiff_t>(end));
      bytes.insert(bytes.end(), frame.begin(), frame.end());
      break;
    }
    case 6: {  // payload field graft: dimension bombs / huge inner lengths.
      // Request payloads start with fixed-width fields; rewriting 4 bytes
      // somewhere in the first 32 payload bytes hits format/channels/
      // width/height on slice frames and the path length on volume ones.
      const std::uint16_t t = frame_type_at(entry, frame_idx);
      if (t == static_cast<std::uint16_t>(FrameType::kSlice) ||
          t == static_cast<std::uint16_t>(FrameType::kVolumeFile)) {
        const std::size_t payload = frame_off + kHeaderBytes;
        const std::size_t field = payload + 4 * rng.below(8);
        const std::uint32_t bombs[] = {0u, 0xFFFFFFFFu, 0x10000u, 0x7FFFu,
                                       static_cast<std::uint32_t>(rng.next())};
        put_u32(bytes, field, bombs[rng.below(5)]);
      } else {
        put_u64(bytes, frame_off + kOffRequestId, rng.next());
      }
      break;
    }
    case 7: {  // raw byte flips (1..8 of them)
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        bytes[rng.below(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    }
    case 8: {  // insert garbage between frames (desyncs the stream)
      const std::size_t len = 1 + rng.below(24);
      std::vector<std::uint8_t> junk(len);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
      const std::size_t at = frame_idx + 1 < n_frames
                                 ? entry.offsets[frame_idx + 1]
                                 : bytes.size();
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   junk.begin(), junk.end());
      break;
    }
  }
  return bytes;
}

/// Replays one byte stream against the server and drains the reply.
/// Returns false (and appends to failures) on a contract violation.
bool run_one(Server& server, const NetLimits& limits,
             const std::vector<std::uint8_t>& bytes,
             std::chrono::milliseconds watchdog, const std::string& label,
             FuzzStats& stats) {
  auto [client, server_fd] = Client::loopback_pair(limits);
  server.adopt(server_fd);

  if (!client.send_bytes(bytes)) {
    // The server error-closed while we were still writing — a legal
    // outcome for garbage streams, as long as it is a *close*, which is
    // exactly what the failed send proves.
    stats.send_cut += 1;
    return true;
  }
  client.shutdown_write();

  const Clock::time_point deadline = Clock::now() + watchdog;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      if (stats.failures.size() < 20) {
        stats.failures.push_back(label +
                                 ": hang — server neither answered nor "
                                 "closed within the watchdog");
      }
      return false;
    }
    const std::optional<ServerMessage> msg = client.recv(left);
    if (msg) {
      switch (msg->type) {
        case FrameType::kResponse: stats.responses += 1; break;
        case FrameType::kRejected: stats.rejected += 1; break;
        case FrameType::kError: stats.errors += 1; break;
        case FrameType::kHelloAck:
        case FrameType::kPong: stats.acks_pongs += 1; break;
        default:
          if (stats.failures.size() < 20) {
            stats.failures.push_back(label + ": client-direction frame type " +
                                     std::to_string(static_cast<unsigned>(
                                         msg->type)) +
                                     " from server");
          }
          return false;
      }
      continue;
    }
    if (client.decode_failed()) {
      if (stats.failures.size() < 20) {
        stats.failures.push_back(label + ": server sent unparseable bytes");
      }
      return false;
    }
    if (client.peer_closed()) {
      stats.clean_eof += 1;
      return true;  // clean EOF — the required terminal state
    }
    // recv timed out but the watchdog has not expired: keep draining
    // (a valid request may still be in the pipeline).
  }
}

}  // namespace

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;
  const auto u16 = image::AnyImage(pattern_image<std::uint16_t>(20, 16));
  const auto u8 = image::AnyImage(pattern_image<std::uint8_t>(16, 12));
  const auto f32 = image::AnyImage(pattern_image<float>(12, 12));
  WireRequestOptions opts;

  {
    CorpusEntry e;
    e.name = "hello_slice_u16";
    push_frame(e, encode_hello(1));
    push_frame(e, encode_slice_request(1, u16, kPrompt, opts));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "hello_slice_u8_f32";
    push_frame(e, encode_hello(2));
    push_frame(e, encode_slice_request(1, u8, kPrompt, opts));
    push_frame(e, encode_slice_request(2, f32, kPrompt, opts));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "hello_ping_slice";
    push_frame(e, encode_hello(3));
    push_frame(e, encode_ping({0xAA, 0xBB, 0xCC}));
    push_frame(e, encode_slice_request(7, u16, kPrompt, opts));
    push_frame(e, encode_ping({}));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "hello_volume_file_missing";
    // The file never exists: exercises the service's error path without
    // touching disk state. The reply must be a clean kError response.
    push_frame(e, encode_hello(4));
    push_frame(e, encode_volume_file_request(1, "no/such/stack.tif", kPrompt,
                                             opts));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "hello_slice_cancel";
    push_frame(e, encode_hello(5));
    push_frame(e, encode_slice_request(9, u16, kPrompt, opts));
    push_frame(e, encode_cancel(9));
    push_frame(e, encode_cancel(12345));  // unknown id: idempotent no-op
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "slice_without_hello";
    push_frame(e, encode_slice_request(1, u16, kPrompt, opts));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    WireRequestOptions deadline_opts;
    deadline_opts.priority = 3;
    deadline_opts.deadline_ms = 60000;
    deadline_opts.trace_id = 0x1234ull;
    e.name = "hello_slice_options";
    push_frame(e, encode_hello(6));
    push_frame(e, encode_slice_request(2, u8, kPrompt, deadline_opts));
    corpus.push_back(std::move(e));
  }
  {
    CorpusEntry e;
    e.name = "hello_only";
    push_frame(e, encode_hello(7));
    corpus.push_back(std::move(e));
  }
  return corpus;
}

FuzzStats run_fuzz(Server& server, const NetLimits& limits,
                   std::uint64_t seed, std::size_t mutants_per_entry,
                   std::chrono::milliseconds watchdog) {
  FuzzStats stats;
  const std::vector<CorpusEntry> corpus = build_corpus();
  for (const CorpusEntry& entry : corpus) {
    // The pristine conversation must terminate cleanly too.
    run_one(server, limits, entry.bytes, watchdog, entry.name + "/pristine",
            stats);
    Rng rng(seed ^ std::hash<std::string>{}(entry.name));
    for (std::size_t i = 0; i < mutants_per_entry; ++i) {
      const std::vector<std::uint8_t> mutant = mutate(entry, rng);
      stats.mutants += 1;
      run_one(server, limits, mutant, watchdog,
              entry.name + "/mutant" + std::to_string(i), stats);
      if (stats.failures.size() >= 20) return stats;
    }
  }
  return stats;
}

}  // namespace zenesis::net::fuzz
