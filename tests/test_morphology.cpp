// Binary morphology tests.
#include <gtest/gtest.h>

#include "zenesis/cv/morphology.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::cv;
namespace zi = zenesis::image;

namespace {

zi::Mask square_mask(std::int64_t size, zi::Box fg) {
  zi::Mask m(size, size);
  for (std::int64_t y = fg.y; y < fg.bottom(); ++y) {
    for (std::int64_t x = fg.x; x < fg.right(); ++x) m.at(x, y) = 1;
  }
  return m;
}

}  // namespace

TEST(Dilate, GrowsRegion) {
  const zi::Mask m = square_mask(9, {4, 4, 1, 1});
  const zi::Mask d = zc::dilate(m, 1, zc::Element::kSquare);
  EXPECT_EQ(zi::mask_area(d), 9);
  EXPECT_EQ(d.at(3, 3), 1);
  EXPECT_EQ(d.at(6, 6), 0);
}

TEST(Erode, ShrinksRegion) {
  const zi::Mask m = square_mask(9, {2, 2, 5, 5});
  const zi::Mask e = zc::erode(m, 1, zc::Element::kSquare);
  EXPECT_EQ(zi::mask_area(e), 9);  // 5x5 erodes to 3x3
  EXPECT_EQ(e.at(2, 2), 0);
  EXPECT_EQ(e.at(4, 4), 1);
}

TEST(Erode, BorderCountsAsBackground) {
  zi::Mask m(5, 5);
  m.fill(1);
  const zi::Mask e = zc::erode(m, 1, zc::Element::kSquare);
  EXPECT_EQ(e.at(0, 0), 0);
  EXPECT_EQ(e.at(2, 2), 1);
}

TEST(Morphology, ZeroRadiusIsIdentity) {
  const zi::Mask m = square_mask(5, {1, 1, 2, 2});
  EXPECT_DOUBLE_EQ(zi::mask_iou(zc::dilate(m, 0), m), 1.0);
  EXPECT_DOUBLE_EQ(zi::mask_iou(zc::erode(m, 0), m), 1.0);
}

TEST(Open, RemovesSpecks) {
  zi::Mask m = square_mask(16, {4, 4, 6, 6});
  m.at(12, 12) = 1;  // isolated speck
  const zi::Mask o = zc::open(m, 1, zc::Element::kSquare);
  EXPECT_EQ(o.at(12, 12), 0);
  EXPECT_EQ(o.at(6, 6), 1);
}

TEST(Close, BridgesSmallGaps) {
  zi::Mask m(16, 5);
  for (std::int64_t x = 2; x < 7; ++x) m.at(x, 2) = 1;
  m.at(7, 2) = 0;  // 1-px gap
  for (std::int64_t x = 8; x < 13; ++x) m.at(x, 2) = 1;
  const zi::Mask c = zc::close(m, 1, zc::Element::kSquare);
  EXPECT_EQ(c.at(7, 2), 1);
}

TEST(DiskElement, RoughlyIsotropic) {
  const zi::Mask m = square_mask(21, {10, 10, 1, 1});
  const zi::Mask d = zc::dilate(m, 4, zc::Element::kDisk);
  // Disk of radius 4: axis points in, far corners out.
  EXPECT_EQ(d.at(14, 10), 1);
  EXPECT_EQ(d.at(10, 14), 1);
  EXPECT_EQ(d.at(13, 13), 0);  // (3,3): 18 > 16 → outside
  EXPECT_EQ(d.at(12, 12), 1);  // (2,2): 8 <= 16 → inside
}

TEST(BoundaryGradient, OnePixelBand) {
  const zi::Mask m = square_mask(9, {2, 2, 5, 5});
  const zi::Mask b = zc::boundary_gradient(m);
  EXPECT_EQ(b.at(2, 2), 1);   // on the boundary
  EXPECT_EQ(b.at(4, 4), 0);   // interior
  EXPECT_EQ(b.at(0, 0), 0);   // far outside... dilation band
  EXPECT_EQ(b.at(1, 2), 1);   // just outside the region
}

TEST(Morphology, NegativeRadiusThrows) {
  const zi::Mask m(3, 3);
  EXPECT_THROW(zc::dilate(m, -1), std::invalid_argument);
}
