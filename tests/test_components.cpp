// Connected-component labeling and region statistics tests.
#include <gtest/gtest.h>

#include "zenesis/cv/components.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::cv;
namespace zi = zenesis::image;

namespace {

zi::Mask from_rows(const std::vector<std::string>& rows) {
  zi::Mask m(static_cast<std::int64_t>(rows[0].size()),
             static_cast<std::int64_t>(rows.size()));
  for (std::size_t y = 0; y < rows.size(); ++y) {
    for (std::size_t x = 0; x < rows[y].size(); ++x) {
      m.at(static_cast<std::int64_t>(x), static_cast<std::int64_t>(y)) =
          rows[y][x] == '#' ? 1 : 0;
    }
  }
  return m;
}

}  // namespace

TEST(Label, CountsDistinctRegions) {
  const zi::Mask m = from_rows({
      "##..#",
      "##..#",
      ".....",
      "#..##",
  });
  const zc::Labeling lab = zc::label_components(m);
  EXPECT_EQ(lab.count, 4);
}

TEST(Label, DiagonalMergesOnlyWith8Connectivity) {
  const zi::Mask m = from_rows({
      "#.",
      ".#",
  });
  EXPECT_EQ(zc::label_components(m, true).count, 1);
  EXPECT_EQ(zc::label_components(m, false).count, 2);
}

TEST(Label, EmptyMaskHasNoComponents) {
  const zc::Labeling lab = zc::label_components(zi::Mask(4, 4));
  EXPECT_EQ(lab.count, 0);
}

TEST(Label, UShapeMergesAcrossScanlines) {
  // Classic union-find stress: two arms join at the bottom.
  const zi::Mask m = from_rows({
      "#.#",
      "#.#",
      "###",
  });
  EXPECT_EQ(zc::label_components(m).count, 1);
}

TEST(ComponentStats, AreaCentroidBounds) {
  const zi::Mask m = from_rows({
      "....",
      ".##.",
      ".##.",
      "....",
  });
  const zc::Labeling lab = zc::label_components(m);
  ASSERT_EQ(lab.count, 1);
  const auto stats = zc::component_stats(lab);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].area, 4);
  EXPECT_DOUBLE_EQ(stats[0].centroid_x, 1.5);
  EXPECT_DOUBLE_EQ(stats[0].centroid_y, 1.5);
  EXPECT_EQ(stats[0].bounds, (zi::Box{1, 1, 2, 2}));
}

TEST(ComponentMask, ExtractsSingleRegion) {
  const zi::Mask m = from_rows({
      "#..#",
  });
  const zc::Labeling lab = zc::label_components(m);
  ASSERT_EQ(lab.count, 2);
  const zi::Mask first = zc::component_mask(lab, 1);
  EXPECT_EQ(zi::mask_area(first), 1);
  EXPECT_EQ(first.at(0, 0), 1);
}

TEST(LargestComponent, PicksByArea) {
  const zi::Mask m = from_rows({
      "##.#",
      "##..",
  });
  const zi::Mask big = zc::largest_component(m);
  EXPECT_EQ(zi::mask_area(big), 4);
  EXPECT_EQ(big.at(3, 0), 0);
}

TEST(LargestComponent, EmptyInputEmptyOutput) {
  EXPECT_EQ(zi::mask_area(zc::largest_component(zi::Mask(3, 3))), 0);
}

TEST(RemoveSmall, DropsBelowThreshold) {
  const zi::Mask m = from_rows({
      "##.#",
      "##..",
  });
  const zi::Mask cleaned = zc::remove_small_components(m, 2);
  EXPECT_EQ(zi::mask_area(cleaned), 4);
  EXPECT_EQ(cleaned.at(3, 0), 0);
}

TEST(FillHoles, ClosesEnclosedBackground) {
  const zi::Mask m = from_rows({
      "#####",
      "#...#",
      "#.#.#",
      "#...#",
      "#####",
  });
  const zi::Mask filled = zc::fill_holes(m);
  EXPECT_EQ(zi::mask_area(filled), 25);
}

TEST(FillHoles, KeepsBorderConnectedBackground) {
  const zi::Mask m = from_rows({
      "###",
      "#..",   // background reaches the border → not a hole
      "###",
  });
  const zi::Mask filled = zc::fill_holes(m);
  EXPECT_EQ(filled.at(1, 1), 0);
  EXPECT_EQ(filled.at(2, 1), 0);
}
