// Dashboard (Mode C) tests.
#include <gtest/gtest.h>

#include "zenesis/eval/dashboard.hpp"

namespace ze = zenesis::eval;

namespace {

ze::Metrics metric_with(double acc, double iou, double dice) {
  ze::Metrics m;
  m.accuracy = acc;
  m.iou = iou;
  m.dice = dice;
  return m;
}

ze::Dashboard sample_dashboard() {
  ze::Dashboard d;
  d.add("crystalline", "zenesis", 0, metric_with(0.98, 0.85, 0.92));
  d.add("crystalline", "zenesis", 1, metric_with(0.99, 0.87, 0.93));
  d.add("crystalline", "otsu", 0, metric_with(0.58, 0.16, 0.27));
  d.add("amorphous", "zenesis", 0, metric_with(0.95, 0.86, 0.92));
  return d;
}

}  // namespace

TEST(Dashboard, RecordsAccumulate) {
  const ze::Dashboard d = sample_dashboard();
  EXPECT_EQ(d.records().size(), 4u);
}

TEST(Dashboard, SummaryAggregatesPerPair) {
  const ze::Dashboard d = sample_dashboard();
  const ze::MetricSummary s = d.summary("crystalline", "zenesis");
  EXPECT_EQ(s.iou.count, 2);
  EXPECT_NEAR(s.iou.mean, 0.86, 1e-12);
}

TEST(Dashboard, PerSliceTableOrdered) {
  ze::Dashboard d;
  d.add("x", "m", 2, metric_with(0.2, 0.2, 0.2));
  d.add("x", "m", 0, metric_with(0.0, 0.0, 0.0));
  d.add("x", "m", 1, metric_with(0.1, 0.1, 0.1));
  const auto t = d.per_slice_table("x", "m");
  ASSERT_EQ(t.row_count(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 0);
  EXPECT_EQ(std::get<std::int64_t>(t.row(2)[0]), 2);
}

TEST(Dashboard, MethodTableHasPaperShape) {
  const ze::Dashboard d = sample_dashboard();
  const auto t = d.method_table("zenesis");
  EXPECT_EQ(t.columns(),
            (std::vector<std::string>{"Sample", "Accuracy", "IOU", "Dice"}));
  EXPECT_EQ(t.row_count(), 2u);  // crystalline + amorphous
}

TEST(Dashboard, SummaryTableListsAllPairs) {
  const ze::Dashboard d = sample_dashboard();
  EXPECT_EQ(d.summary_table().row_count(), 3u);
}

TEST(Dashboard, RenderContainsSections) {
  const ze::Dashboard d = sample_dashboard();
  const std::string r = d.render();
  EXPECT_NE(r.find("dashboard"), std::string::npos);
  EXPECT_NE(r.find("crystalline"), std::string::npos);
  EXPECT_NE(r.find("zenesis"), std::string::npos);
  EXPECT_NE(r.find("Per-slice"), std::string::npos);
}

TEST(Dashboard, JsonExportsRecordsAndSummaries) {
  const ze::Dashboard d = sample_dashboard();
  const std::string j = d.to_json().to_string();
  EXPECT_NE(j.find("\"per_slice\""), std::string::npos);
  EXPECT_NE(j.find("\"summaries\""), std::string::npos);
  EXPECT_NE(j.find("\"records\": 4"), std::string::npos);
}

TEST(Dashboard, EmptySummaryIsZeroCount) {
  ze::Dashboard d;
  EXPECT_EQ(d.summary("none", "none").iou.count, 0);
  EXPECT_EQ(d.summary_table().row_count(), 0u);
}
