// Thousand-client soak for zenesis::net (ISSUE-9 satellite): 1000
// concurrent loopback connections across 8 weighted tenants submit 2000
// mixed-priority slice requests against one poll() event loop, and every
// response must be byte-identical to a direct SegmentService::submit of
// the same image. The image pool is small on purpose — repeats exercise
// the feature-cache/memoization path exactly like production fan-in.
// Passing under ASAN (zero leaks) and TSAN is part of the acceptance
// criteria; tools/ci.sh runs this binary in both stages.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "zenesis/eval/dashboard.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/net/client.hpp"
#include "zenesis/net/frame.hpp"
#include "zenesis/net/server.hpp"
#include "zenesis/serve/service.hpp"

namespace ze = zenesis::eval;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zn = zenesis::net;
namespace zs = zenesis::serve;

using namespace std::chrono_literals;

namespace {

constexpr std::size_t kClients = 1000;
constexpr std::size_t kRequestsPerClient = 2;
constexpr std::size_t kTenants = 8;
constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

std::vector<zi::AnyImage> make_image_pool() {
  std::vector<zi::AnyImage> pool;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    zf::SynthConfig cfg;
    cfg.type = zf::SampleType::kCrystalline;
    cfg.width = 24;
    cfg.height = 24;
    cfg.seed = seed;
    pool.emplace_back(zf::generate_slice(cfg, 0).raw);
  }
  return pool;
}

}  // namespace

TEST(NetSoak, ThousandClientsByteIdenticalToDirectSubmit) {
  zs::SegmentService service;
  zn::ServerConfig cfg;
  // Quotas sized so nothing sheds: the assertion below is that a fully
  // loaded but in-spec swarm is served completely, not throttled.
  cfg.default_tenant = {/*weight=*/1, /*max_queued=*/4096};
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    cfg.tenants[t + 1] = {/*weight=*/1 + t % 3, /*max_queued=*/4096};
  }
  cfg.shed_backlog = 4096;
  zn::Server server(service, cfg);

  const std::vector<zi::AnyImage> pool = make_image_pool();

  // Reference outputs straight from the service (same instance, so the
  // wire path and the direct path share every cache the service owns).
  std::vector<zs::Response> want;
  for (const zi::AnyImage& img : pool) {
    want.push_back(service.submit(zs::Request::slice(img, kPrompt)).get());
    ASSERT_EQ(want.back().status, zs::Response::Status::kOk);
    ASSERT_TRUE(want.back().slice.has_value());
  }

  // Phase 1: connect + hello everyone. 1000 live fds on one poll loop.
  std::vector<zn::Client> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    auto [client, server_fd] = zn::Client::loopback_pair();
    server.adopt(server_fd);
    clients.push_back(std::move(client));
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i].hello(static_cast<std::uint32_t>(i % kTenants) + 1))
        << "client " << i;
  }

  // Phase 2: everyone submits, mixed priorities, before anyone reads —
  // maximal concurrent backlog through the fairness machinery.
  std::vector<std::vector<std::uint64_t>> rids(kClients);
  for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
    for (std::size_t i = 0; i < kClients; ++i) {
      const std::size_t img = (i + r) % pool.size();
      zn::WireRequestOptions opts;
      opts.priority = static_cast<std::int32_t>(i % 5) - 2;
      const std::uint64_t rid = clients[i].submit_slice(pool[img], kPrompt, opts);
      ASSERT_NE(rid, 0u) << "client " << i << " request " << r;
      rids[i].push_back(rid);
    }
  }

  // Phase 3: collect and compare byte-for-byte against the direct path.
  for (std::size_t i = 0; i < kClients; ++i) {
    for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
      const auto resp = clients[i].wait_for(rids[i][r], 120000ms);
      ASSERT_TRUE(resp.has_value()) << "client " << i << " request " << r;
      ASSERT_EQ(resp->type, zn::FrameType::kResponse)
          << "client " << i << " request " << r;
      const zs::Response& ref = want[(i + r) % pool.size()];
      EXPECT_EQ(resp->confidence, ref.slice->confidence);
      const auto got_px = resp->mask.pixels();
      const auto ref_px = ref.slice->mask.pixels();
      ASSERT_EQ(got_px.size(), ref_px.size());
      EXPECT_EQ(std::memcmp(got_px.data(), ref_px.data(), got_px.size()), 0)
          << "client " << i << " request " << r;
    }
  }

  // The swarm was in-spec: everything served, nothing shed, no errors.
  zn::NetStats ns = server.stats();
  EXPECT_EQ(ns.connections_accepted, kClients);
  EXPECT_EQ(ns.connections_active, kClients);
  EXPECT_EQ(ns.requests_received, kClients * kRequestsPerClient);
  EXPECT_EQ(ns.responses_sent, kClients * kRequestsPerClient);
  EXPECT_EQ(ns.rejected_sent, 0u);
  EXPECT_EQ(ns.errors_sent, 0u);
  EXPECT_EQ(ns.shed_tenant_quota, 0u);
  EXPECT_EQ(ns.shed_overloaded, 0u);
  EXPECT_EQ(ns.protocol_errors, 0u);
  EXPECT_EQ(ns.tenants.size(), kTenants);
  EXPECT_EQ(service.stats().rejected_queue_full, 0u);
  EXPECT_GE(ns.wire_us.count(), kClients * kRequestsPerClient);

  // Wire-level latency histogram flows into the Mode-C dashboard.
  ze::Dashboard dashboard;
  server.publish_stats(dashboard);
  const auto& stats = dashboard.stats();
  ASSERT_TRUE(stats.count("net_connections_accepted"));
  EXPECT_EQ(stats.at("net_connections_accepted"), double(kClients));
  EXPECT_EQ(stats.at("net_responses_sent"),
            double(kClients * kRequestsPerClient));
  EXPECT_TRUE(stats.count("net_wire_us_p99"));

  clients.clear();  // all 1000 disconnect at once
  server.stop();
  EXPECT_EQ(server.backlog(), 0u);
  EXPECT_EQ(server.inflight(), 0u);
}
