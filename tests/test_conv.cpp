// Tests for conv2d / pooling / resize / token layout kernels.
#include <gtest/gtest.h>

#include "zenesis/tensor/conv.hpp"
#include "zenesis/tensor/init.hpp"

namespace zt = zenesis::tensor;

namespace {

zt::Tensor ramp_chw(std::int64_t c, std::int64_t h, std::int64_t w) {
  zt::Tensor t({c, h, w});
  float v = 0.0f;
  for (float& x : t.flat()) x = v++;
  return t;
}

}  // namespace

TEST(Conv2d, IdentityKernelPassesThrough) {
  zt::Tensor in = ramp_chw(1, 4, 4);
  zt::Tensor w({1, 1, 1, 1}, {1.0f});
  zt::Tensor out = zt::conv2d(in, w, zt::zeros(1));
  ASSERT_EQ(out.shape(), in.shape());
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    EXPECT_FLOAT_EQ(out.flat()[static_cast<std::size_t>(i)],
                    in.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(Conv2d, BoxKernelSums) {
  zt::Tensor in({1, 3, 3});
  in.fill(1.0f);
  zt::Tensor w({1, 1, 3, 3});
  w.fill(1.0f);
  zt::Tensor out = zt::conv2d(in, w, zt::zeros(1), 1, 1);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);  // interior
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);  // corner (zero pad)
}

TEST(Conv2d, StrideHalvesOutput) {
  zt::Tensor in = ramp_chw(1, 8, 8);
  zt::Tensor w({1, 1, 2, 2});
  w.fill(0.25f);
  zt::Tensor out = zt::conv2d(in, w, zt::zeros(1), 2, 0);
  EXPECT_EQ(out.dim(1), 4);
  EXPECT_EQ(out.dim(2), 4);
}

TEST(Conv2d, BiasApplied) {
  zt::Tensor in({1, 2, 2});
  zt::Tensor w({1, 1, 1, 1}, {0.0f});
  zt::Tensor b({1}, {3.5f});
  zt::Tensor out = zt::conv2d(in, w, b);
  for (float v : out.flat()) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Conv2d, MultiChannelAccumulates) {
  zt::Tensor in({2, 2, 2});
  in.fill(1.0f);
  zt::Tensor w({1, 2, 1, 1});
  w.fill(1.0f);
  zt::Tensor out = zt::conv2d(in, w, zt::zeros(1));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.0f);
}

TEST(Conv2d, ChannelMismatchThrows) {
  zt::Tensor in({2, 4, 4});
  zt::Tensor w({1, 3, 1, 1});
  EXPECT_THROW(zt::conv2d(in, w, zt::zeros(1)), std::invalid_argument);
}

TEST(Maxpool, PicksMaxima) {
  zt::Tensor in({1, 2, 2}, {1, 5, 3, 2});
  zt::Tensor out = zt::maxpool2x2(in);
  EXPECT_EQ(out.dim(1), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
}

TEST(ResizeBilinear, ConstantImageStaysConstant) {
  zt::Tensor in({1, 4, 4});
  in.fill(2.5f);
  zt::Tensor out = zt::resize_bilinear(in, 9, 7);
  EXPECT_EQ(out.dim(1), 9);
  EXPECT_EQ(out.dim(2), 7);
  for (float v : out.flat()) EXPECT_NEAR(v, 2.5f, 1e-6f);
}

TEST(ResizeBilinear, UpscalePreservesGradientDirection) {
  zt::Tensor in({1, 1, 3}, {0.0f, 1.0f, 2.0f});
  zt::Tensor out = zt::resize_bilinear(in, 1, 9);
  for (std::int64_t x = 1; x < 9; ++x) {
    EXPECT_GE(out.at(0, 0, x), out.at(0, 0, x - 1) - 1e-6f);
  }
}

TEST(ResizeBilinear, IdentitySizeIsExact) {
  zt::Tensor in = ramp_chw(2, 5, 6);
  zt::Tensor out = zt::resize_bilinear(in, 5, 6);
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    EXPECT_NEAR(out.flat()[static_cast<std::size_t>(i)],
                in.flat()[static_cast<std::size_t>(i)], 1e-5f);
  }
}

TEST(Tokens, RoundTripThroughTokenLayout) {
  zt::Tensor in = ramp_chw(3, 4, 5);
  zt::Tensor tok = zt::to_tokens(in);
  EXPECT_EQ(tok.dim(0), 20);
  EXPECT_EQ(tok.dim(1), 3);
  zt::Tensor back = zt::from_tokens(tok, 4, 5);
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    EXPECT_FLOAT_EQ(back.flat()[static_cast<std::size_t>(i)],
                    in.flat()[static_cast<std::size_t>(i)]);
  }
}

TEST(Tokens, WrongCountThrows) {
  zt::Tensor tok({6, 2});
  EXPECT_THROW(zt::from_tokens(tok, 2, 4), std::invalid_argument);
}
