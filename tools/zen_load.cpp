// zen_load — wire-level load generator and latency report for zen_net.
//
// Spins up an in-process SegmentService + net::Server, connects N
// loopback clients spread across T tenants, pumps R requests per client
// (repeating a small synthetic image pool, so the cache-hot path
// dominates exactly like steady-state traffic), then writes the wire and
// service latency distributions to a BENCH JSON:
//
//   zen_load [--clients N] [--requests R] [--tenants T] [--size PX]
//            [--out DIR]
//
// Defaults: 200 clients x 4 requests, 8 tenants, 24x24 slices,
// out/BENCH_net.json. The soak *test* (tests/test_net_soak.cpp) asserts
// correctness (byte-identity, zero sheds); this tool measures the same
// topology and records the numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "zenesis/fibsem/synth.hpp"
#include "zenesis/io/report.hpp"
#include "zenesis/net/client.hpp"
#include "zenesis/net/server.hpp"
#include "zenesis/serve/service.hpp"

using namespace zenesis;
using namespace std::chrono_literals;

namespace {

struct Options {
  std::size_t clients = 200;
  std::size_t requests = 4;   ///< per client
  std::uint32_t tenants = 8;
  std::int64_t size = 24;     ///< slice edge length in pixels
  std::string out = "out";
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--requests R] [--tenants T] "
               "[--size PX] [--out DIR]\n",
               argv0);
  return 2;
}

std::vector<image::AnyImage> make_pool(std::int64_t size) {
  std::vector<image::AnyImage> pool;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kCrystalline;
    cfg.width = size;
    cfg.height = size;
    cfg.seed = seed;
    pool.emplace_back(fibsem::generate_slice(cfg, 0).raw);
  }
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--clients") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.clients = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.requests = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--tenants") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.tenants = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--size") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.size = std::strtoll(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.out = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.clients == 0 || opt.requests == 0 || opt.tenants == 0 ||
      opt.size < 8) {
    return usage(argv[0]);
  }

  serve::SegmentService service;
  net::ServerConfig cfg;
  cfg.default_tenant = {1, 1u << 20};
  for (std::uint32_t t = 0; t < opt.tenants; ++t) {
    cfg.tenants[t + 1] = {1 + t % 3, 1u << 20};
  }
  cfg.shed_backlog = 1u << 20;
  cfg.max_connections = opt.clients + 16;
  net::Server server(service, cfg);

  const std::vector<image::AnyImage> pool = make_pool(opt.size);
  const std::string prompt = "bright needle-like crystalline catalyst";

  std::vector<net::Client> clients;
  clients.reserve(opt.clients);
  for (std::size_t i = 0; i < opt.clients; ++i) {
    auto [client, server_fd] = net::Client::loopback_pair();
    server.adopt(server_fd);
    clients.push_back(std::move(client));
  }
  for (std::size_t i = 0; i < opt.clients; ++i) {
    if (!clients[i].hello(static_cast<std::uint32_t>(i % opt.tenants) + 1)) {
      std::fprintf(stderr, "zen_load: hello failed for client %zu\n", i);
      return 1;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<std::uint64_t>> rids(opt.clients);
  for (std::size_t r = 0; r < opt.requests; ++r) {
    for (std::size_t i = 0; i < opt.clients; ++i) {
      net::WireRequestOptions wopts;
      wopts.priority = static_cast<std::int32_t>(i % 5) - 2;
      const std::uint64_t rid = clients[i].submit_slice(
          pool[(i + r) % pool.size()], prompt, wopts);
      if (rid == 0) {
        std::fprintf(stderr, "zen_load: submit failed for client %zu\n", i);
        return 1;
      }
      rids[i].push_back(rid);
    }
  }

  serve::Histogram total_us;  ///< service-side per-request total
  std::uint64_t ok = 0, rejected = 0, errors = 0;
  for (std::size_t i = 0; i < opt.clients; ++i) {
    for (const std::uint64_t rid : rids[i]) {
      const auto resp = clients[i].wait_for(rid, 600000ms);
      if (!resp) {
        std::fprintf(stderr, "zen_load: client %zu request %llu timed out\n",
                     i, static_cast<unsigned long long>(rid));
        return 1;
      }
      switch (resp->type) {
        case net::FrameType::kResponse:
          ok += 1;
          total_us.record(resp->total_us);
          break;
        case net::FrameType::kRejected: rejected += 1; break;
        default: errors += 1; break;
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t total = ok + rejected + errors;

  const net::NetStats ns = server.stats();
  clients.clear();
  server.stop();

  io::JsonObject rec;
  rec.set("bench", std::string("net_load"));
  rec.set("clients", static_cast<std::int64_t>(opt.clients));
  rec.set("requests_per_client", static_cast<std::int64_t>(opt.requests));
  rec.set("tenants", static_cast<std::int64_t>(opt.tenants));
  rec.set("slice_px", static_cast<std::int64_t>(opt.size));
  rec.set("requests_total", static_cast<std::int64_t>(total));
  rec.set("responses_ok", static_cast<std::int64_t>(ok));
  rec.set("responses_rejected", static_cast<std::int64_t>(rejected));
  rec.set("responses_error", static_cast<std::int64_t>(errors));
  rec.set("wall_s", wall_s);
  rec.set("requests_per_sec",
          wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0);
  rec.set("wire_us_p50", ns.wire_us.percentile(50));
  rec.set("wire_us_p95", ns.wire_us.percentile(95));
  rec.set("wire_us_p99", ns.wire_us.percentile(99));
  rec.set("wire_us_mean", ns.wire_us.mean());
  rec.set("wire_us_max", ns.wire_us.max());
  rec.set("total_us_p50", total_us.percentile(50));
  rec.set("total_us_p95", total_us.percentile(95));
  rec.set("total_us_p99", total_us.percentile(99));
  rec.set("shed_tenant_quota", static_cast<std::int64_t>(ns.shed_tenant_quota));
  rec.set("shed_overloaded", static_cast<std::int64_t>(ns.shed_overloaded));
  rec.set("protocol_errors", static_cast<std::int64_t>(ns.protocol_errors));
  rec.set("bytes_in", static_cast<std::int64_t>(ns.bytes_in));
  rec.set("bytes_out", static_cast<std::int64_t>(ns.bytes_out));

  std::error_code ec;
  std::filesystem::create_directories(opt.out, ec);
  const std::string path = opt.out + "/BENCH_net.json";
  rec.write(path);
  std::printf("%s\n", rec.to_string(2).c_str());
  std::printf("zen_load: wrote %s (%llu requests, %.1f req/s)\n", path.c_str(),
              static_cast<unsigned long long>(total),
              total > 0 && wall_s > 0 ? static_cast<double>(total) / wall_s
                                      : 0.0);
  return 0;
}
