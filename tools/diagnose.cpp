// Ad-hoc diagnostic for pipeline tuning (not part of the build).
#include <cstdio>

#include "zenesis/core/session.hpp"
#include "zenesis/eval/metrics.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"
#include "zenesis/cv/distance.hpp"
#include "zenesis/cv/filters.hpp"

using namespace zenesis;

static void diagnose(fibsem::SampleType type) {
  fibsem::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = 2025;
  const auto s = fibsem::generate_slice(cfg, 1);
  const char* name = fibsem::sample_type_name(type);

  core::Session session;
  const image::ImageF32 ready =
      session.pipeline().make_ready(image::AnyImage(s.raw));
  std::printf("\n==== %s ==== GT fraction=%.3f\n", name,
              image::mask_fraction(s.ground_truth));
  io::write_pgm_f32(std::string("diag_") + name + "_ready.pgm", ready);
  io::write_pgm_f32(std::string("diag_") + name + "_gt.pgm", [&] {
    image::ImageF32 g(256, 256, 1);
    for (std::int64_t y = 0; y < 256; ++y)
      for (std::int64_t x = 0; x < 256; ++x)
        g.at(x, y) = s.ground_truth.at(x, y) ? 1.0f : 0.0f;
    return g;
  }());

  // Feature stats on GT vs non-GT patches
  const auto maps = models::compute_features(ready);
  double fgf[5] = {0}, bgf[5] = {0};
  std::int64_t nfg = 0, nbg = 0;
  for (std::int64_t y = 0; y < 256; ++y) {
    for (std::int64_t x = 0; x < 256; ++x) {
      const auto f = maps.at(x, y);
      if (s.ground_truth.at(x, y)) {
        for (int c = 0; c < 5; ++c) fgf[c] += f[c];
        ++nfg;
      } else {
        for (int c = 0; c < 5; ++c) bgf[c] += f[c];
        ++nbg;
      }
    }
  }
  std::printf("feat fg: I=%.3f T=%.3f E=%.3f C=%.3f R=%.3f\n", fgf[0] / nfg,
              fgf[1] / nfg, fgf[2] / nfg, fgf[3] / nfg, fgf[4] / nfg);
  std::printf("feat bg: I=%.3f T=%.3f E=%.3f C=%.3f R=%.3f\n", bgf[0] / nbg,
              bgf[1] / nbg, bgf[2] / nbg, bgf[3] / nbg, bgf[4] / nbg);

  // DINO
  const auto g = session.pipeline().detector().detect(maps, fibsem::default_prompt(type));
  std::printf("DINO: %zu boxes\n", g.boxes.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, g.boxes.size()); ++i) {
    // GT coverage of box
    std::int64_t in_box_gt = 0;
    const auto& b = g.boxes[i].box;
    for (std::int64_t y = b.y; y < b.bottom(); ++y)
      for (std::int64_t x = b.x; x < b.right(); ++x)
        in_box_gt += s.ground_truth.at(x, y);
    std::printf("  box[%zu] (%lld,%lld %lldx%lld) conf=%.3f gt_recall=%.2f "
                "gt_density=%.2f\n",
                i, (long long)b.x, (long long)b.y, (long long)b.w,
                (long long)b.h, g.boxes[i].score,
                (double)in_box_gt / image::mask_area(s.ground_truth),
                (double)in_box_gt / b.area());
  }
  // relevance map dump
  io::write_pgm_f32(std::string("diag_") + name + "_rel.pgm", [&] {
    image::ImageF32 r(g.relevance.width(), g.relevance.height(), 1);
    for (std::int64_t y = 0; y < r.height(); ++y)
      for (std::int64_t x = 0; x < r.width(); ++x)
        r.at(x, y) = 0.5f + 0.5f * g.relevance.at(x, y);
    return r;
  }());

  // Zenesis result
  const auto zres = session.pipeline().segment_ready(ready, fibsem::default_prompt(type));
  const auto zm = eval::compute_metrics(zres.mask, s.ground_truth);
  std::printf("ZENESIS: acc=%.3f iou=%.3f dice=%.3f pred_frac=%.3f\n",
              zm.accuracy, zm.iou, zm.dice, image::mask_fraction(zres.mask));
  io::write_ppm(std::string("diag_") + name + "_zen.ppm",
                image::overlay_mask(ready, zres.mask));

  // FP/FN structure of the Zenesis mask
  {
    // classify FP: near-dark-region (within 8px of pixel<0.15) vs other
    image::Mask dark(256, 256);
    for (std::int64_t y = 0; y < 256; ++y)
      for (std::int64_t x = 0; x < 256; ++x)
        dark.at(x, y) = ready.at(x, y) < 0.15f ? 1 : 0;
    const auto dist = cv::distance_to_foreground(dark);
    std::int64_t fp_halo = 0, fp_other = 0, fn = 0;
    for (std::int64_t y = 0; y < 256; ++y) {
      for (std::int64_t x = 0; x < 256; ++x) {
        const bool p = zres.mask.at(x, y) != 0, g = s.ground_truth.at(x, y) != 0;
        if (p && !g) (dist.at(x, y) < 8.0f ? fp_halo : fp_other)++;
        if (!p && g) fn++;
      }
    }
    std::printf("  FP near dark boundary: %lld, FP elsewhere: %lld, FN: %lld\n",
                (long long)fp_halo, (long long)fp_other, (long long)fn);
  }

  // FN structure: residue statistics at FN pixels
  {
    const auto ctx = cv::median_filter_large(maps.channels[models::kIntensity], 48);
    const auto ctx_s = cv::median_filter_large(maps.channels[models::kIntensity], 20);
    std::int64_t bins[6] = {0};  // residue <0, 0-0.03, .03-.06, .06-.1, .1-.15, >.15
    std::int64_t veto_only = 0;
    for (std::int64_t y = 0; y < 256; ++y) {
      for (std::int64_t x = 0; x < 256; ++x) {
        if (zres.mask.at(x, y) != 0 || s.ground_truth.at(x, y) == 0) continue;
        const float r = maps.channels[models::kIntensity].at(x, y) - ctx.at(x, y);
        const float rs2 = maps.channels[models::kIntensity].at(x, y) - ctx_s.at(x, y);
        int b = r < 0 ? 0 : r < 0.03f ? 1 : r < 0.06f ? 2 : r < 0.1f ? 3 : r < 0.15f ? 4 : 5;
        bins[b]++;
        if (r > 0.06f && rs2 < 0.015f) veto_only++;
      }
    }
    std::printf("  FN residue bins: <0:%lld 0-.03:%lld .03-.06:%lld .06-.1:%lld .1-.15:%lld >.15:%lld veto_blocked:%lld\n",
                (long long)bins[0], (long long)bins[1], (long long)bins[2],
                (long long)bins[3], (long long)bins[4], (long long)bins[5],
                (long long)veto_only);
  }

  // Per-box SAM candidate analysis for each DINO box
  {
    const auto enc = session.pipeline().sam().encode(ready);
    for (std::size_t bi = 0; bi < std::min<std::size_t>(3, g.boxes.size()); ++bi) {
      const auto cands =
          session.pipeline().sam().predict_box_candidates(enc, g.boxes[bi].box);
      for (const auto& c : cands) {
        const auto cm = eval::compute_metrics(c.mask, s.ground_truth);
        // mean relevance inside mask
        double rsum = 0.0;
        std::int64_t rn = 0;
        for (std::int64_t y = 0; y < 256; ++y) {
          for (std::int64_t x = 0; x < 256; ++x) {
            if (c.mask.at(x, y) == 0) continue;
            rsum += g.relevance.at(std::min(g.grid_w - 1, x / 8),
                                   std::min(g.grid_h - 1, y / 8));
            ++rn;
          }
        }
        // replicate the pipeline's AlignmentScorer
        double S = 0.0;
        {
          std::vector<float> vals;
          const auto& b = g.boxes[bi].box;
          auto align = [&](std::int64_t x, std::int64_t y) {
            float dot = 0.0f;
            for (int ch = 0; ch < 5; ++ch)
              dot += g.concept_direction[(size_t)ch] *
                     (maps.channels[(size_t)ch].at(x, y) - enc.enc.mean_feature.at(ch));
            return dot;
          };
          for (std::int64_t y = b.y; y < b.bottom(); ++y)
            for (std::int64_t x = b.x; x < b.right(); ++x) vals.push_back(align(x, y));
          auto mid = vals.begin() + vals.size() / 2;
          std::nth_element(vals.begin(), mid, vals.end());
          const float theta = *mid;
          auto p90i = vals.begin() + (size_t)(0.9 * (vals.size() - 1));
          std::nth_element(vals.begin(), p90i, vals.end());
          const double lam = 0.4 * std::max(0.0f, *p90i - theta);
          for (std::int64_t y = b.y; y < b.bottom(); ++y)
            for (std::int64_t x = b.x; x < b.right(); ++x)
              if (c.mask.at(x, y)) S += align(x, y) - theta - lam;
          std::printf(
              "  box%zu cand p=%+d: iou=%.3f frac=%.3f stab=%.2f rim=%.2f "
              "conf=%.3f relv=%.3f S=%.0f theta=%.2f lam=%.2f\n",
              bi, c.polarity, cm.iou, c.area_fraction, c.stability,
              c.rim_overlap, c.confidence, rn ? rsum / rn : 0.0, S, theta, lam);
        }
      }
    }
  }

  // Otsu
  const auto otsu = core::baseline_otsu(ready);
  const auto om = eval::compute_metrics(otsu, s.ground_truth);
  std::printf("OTSU: acc=%.3f iou=%.3f dice=%.3f pred_frac=%.3f\n", om.accuracy,
              om.iou, om.dice, image::mask_fraction(otsu));

  // SAM only
  const auto sam = core::baseline_sam_only(session.pipeline().sam(), ready);
  const auto sm = eval::compute_metrics(sam, s.ground_truth);
  std::printf("SAM-ONLY: acc=%.3f iou=%.3f dice=%.3f pred_frac=%.3f\n",
              sm.accuracy, sm.iou, sm.dice, image::mask_fraction(sam));
}

int main() {
  diagnose(fibsem::SampleType::kCrystalline);
  diagnose(fibsem::SampleType::kAmorphous);
  return 0;
}
