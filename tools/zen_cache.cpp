// zen_cache — inspect and maintain a Zenesis on-disk embedding store.
//
// The persistent feature-cache tier (ZENESIS cache hierarchy L2) keeps
// one CRC-checked .zfe record per (image, backbone-config) key. This tool
// answers the operational questions: what is in a cache directory, is it
// healthy, how big is it, and how do I empty it — without touching the
// hit/miss counters of any running pipeline.
//
//   zen_cache stats  <dir>   totals: records, bytes, valid/invalid split
//   zen_cache list   <dir>   one line per record (key, bytes, status)
//   zen_cache verify <dir>   full validation; exit 1 if any record is bad
//   zen_cache sweep  <dir>   remove orphaned temp files from crashed writers
//   zen_cache purge  <dir>   delete every record and temp file

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "zenesis/cache/disk_store.hpp"

namespace {

using zenesis::cache::DiskStore;
using zenesis::cache::DiskStoreConfig;

int usage() {
  std::fprintf(stderr,
               "usage: zen_cache <stats|list|verify|sweep|purge> <dir>\n");
  return 2;
}

DiskStore open_store(const std::string& dir, bool sweep) {
  DiskStoreConfig cfg;
  cfg.dir = dir;
  cfg.sweep_temps_on_open = sweep;
  return DiskStore(cfg);
}

struct ScanTotals {
  std::size_t records = 0;
  std::size_t valid = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;
};

ScanTotals totals_of(const std::vector<DiskStore::RecordInfo>& records) {
  ScanTotals t;
  for (const auto& r : records) {
    ++t.records;
    t.file_bytes += r.file_bytes;
    if (r.valid) {
      ++t.valid;
      t.payload_bytes += r.payload_bytes;
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];

  try {
    if (cmd == "stats") {
      const DiskStore store = open_store(dir, /*sweep=*/false);
      const ScanTotals t = totals_of(store.scan());
      std::printf("directory      %s\n", store.directory().c_str());
      std::printf("records        %zu\n", t.records);
      std::printf("valid          %zu\n", t.valid);
      std::printf("invalid        %zu\n", t.records - t.valid);
      std::printf("file bytes     %" PRIu64 "\n", t.file_bytes);
      std::printf("payload bytes  %" PRIu64 "\n", t.payload_bytes);
      return 0;
    }
    if (cmd == "list" || cmd == "verify") {
      const DiskStore store = open_store(dir, /*sweep=*/false);
      const auto records = store.scan();
      std::size_t bad = 0;
      for (const auto& r : records) {
        if (r.valid) {
          if (cmd == "list") {
            std::printf("%016" PRIx64 "-%016" PRIx64 "  %10" PRIu64
                        " B  v%u  ok\n",
                        r.key.lo, r.key.hi, r.payload_bytes, r.version);
          }
        } else {
          ++bad;
          std::printf("%016" PRIx64 "-%016" PRIx64 "  %10" PRIu64
                      " B  v%u  BAD: %s\n",
                      r.key.lo, r.key.hi, r.file_bytes, r.version,
                      r.problem.c_str());
        }
      }
      if (cmd == "verify") {
        std::printf("%zu records, %zu bad\n", records.size(), bad);
        return bad == 0 ? 0 : 1;
      }
      return 0;
    }
    if (cmd == "sweep") {
      DiskStore store = open_store(dir, /*sweep=*/false);
      std::printf("removed %zu temp file(s)\n", store.sweep_temps());
      return 0;
    }
    if (cmd == "purge") {
      DiskStore store = open_store(dir, /*sweep=*/false);
      std::printf("removed %zu file(s)\n", store.purge());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zen_cache: %s\n", e.what());
    return 1;
  }
  return usage();
}
