#!/usr/bin/env bash
# CI entry point: build + test the repo seven times — a default
# RelWithDebInfo build running the full tier-1 suite, a ThreadSanitizer
# build race-checking the concurrency surface (thread pool, parallel
# Mode-B pipelines, feature cache, segmentation service, streaming TIFF
# reader, the zen_net event loop with its fuzz/fault/soak suites), an
# AddressSanitizer(+UBSan) build memory-checking the same surface plus
# the TIFF fuzz corpus and the SIMD kernel backends, a standalone UBSan
# build replaying the TIFF and zen_net protocol fuzz corpora with
# recovery disabled (any UB aborts), a rerun of the default suite with
# ZENESIS_TRACE=1 so every test also exercises the observability
# recording path (seqlock rings, trace-id stitching), a rerun with
# ZENESIS_KERNEL=scalar pinning every test to the scalar reference
# backend — dispatch-parity proof that backend selection is a pure
# performance knob — and an int8 rerun (ZENESIS_PRECISION=int8) of the
# kernel suite under the ASAN and UBSan builds, so the quantized GEMM
# path (saturating requantize, SIMD tails, accuracy gate) is
# sanitizer-checked every run.
#
# Usage:
#   tools/ci.sh                # default + TSAN + ASAN + UBSAN + traced + scalar + int8
#   CI_TSAN_ALL=1 tools/ci.sh  # run the ENTIRE suite under TSAN (slow)
#   CI_ASAN_ALL=1 tools/ci.sh  # run the ENTIRE suite under ASAN (slow)
#   CI_JOBS=8 tools/ci.sh      # override build/test parallelism
#
# Exit status is non-zero if any build or test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
# Tests exercising the concurrency and hardened-ingestion paths; extend
# when adding parallel features. CI_TSAN_ALL=1 / CI_ASAN_ALL=1 widen to
# the full suite. test_tiff matches test_tiff, test_tiff_fuzz,
# test_tiff_stream and test_tiff_codec, so the codec-aware mutation
# fuzzer (LZW/Deflate/predictor corpus), the LZW/zlib/predictor unit
# suite, and the mmap/pread byte-source suites (cross-source
# byte-equality sweep, 8-thread pread concurrency regression) all run
# under every sanitizer;
# test_cache matches test_cache, test_cache_disk and test_cache_stress,
# so the sharded-LRU contention stress and disk-tier corruption suite
# run under every sanitizer too. test_kernels puts the AVX2/blocked
# micro-kernels (tile edges, packed panels, int8 quantization) under
# ASAN/TSAN/UBSan. test_net matches test_net, test_net_fuzz,
# test_net_faults and test_net_soak: the poll() event loop, the protocol
# mutation fuzzer, the fault-injection suite and the thousand-client
# soak all run race- and leak-checked every CI run.
SAN_FILTER="${CI_SAN_FILTER:-test_parallel|test_volume_parallel|test_batch_images|test_serve|test_obs|test_pipeline|test_session|test_integration|test_tiff|test_cache|test_kernels|test_net}"

echo "=== [1/7] default build + full tier-1 suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/7] ThreadSanitizer build + concurrency suite ==="
cmake -B build-tsan -S . -DZENESIS_SANITIZE=thread \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
if [[ "${CI_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "$SAN_FILTER"
fi

echo "=== [3/7] AddressSanitizer build + concurrency suite ==="
cmake -B build-asan -S . -DZENESIS_SANITIZE=address \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
if [[ "${CI_ASAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" -R "$SAN_FILTER"
fi

echo "=== [4/7] UndefinedBehaviorSanitizer build + fuzz/corruption/kernel corpora ==="
cmake -B build-ubsan -S . -DZENESIS_SANITIZE=undefined \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ubsan -j "$JOBS"
# test_tiff here pulls in test_tiff_fuzz (7008 structure-aware mutants,
# a third of them codec-aware LZW/Deflate/predictor attacks) and
# test_tiff_codec, so the bit-twiddling decoder internals run with UB
# recovery disabled: any shift/overflow/alignment slip aborts the stage.
ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -R "test_tiff|test_cache|test_kernels|test_net_fuzz"

echo "=== [5/7] tracing-enabled rerun of the default suite (ZENESIS_TRACE=1) ==="
ZENESIS_TRACE=1 ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [6/7] scalar-backend rerun of the default suite (ZENESIS_KERNEL=scalar) ==="
ZENESIS_KERNEL=scalar ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [7/7] int8-precision kernel suite under ASAN + UBSan (ZENESIS_PRECISION=int8) ==="
# Every test in test_kernels — the int8 accuracy gate included — with
# the process-wide precision forced to int8, under both memory and UB
# sanitizers: overflow in the saturating requantize, out-of-bounds in
# the SIMD pack/unpack tails, or a quantization-induced mask drift all
# fail this stage.
ZENESIS_PRECISION=int8 ctest --test-dir build-asan --output-on-failure -j "$JOBS" -R "test_kernels"
ZENESIS_PRECISION=int8 ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -R "test_kernels"

echo "CI OK"
