#!/usr/bin/env bash
# CI entry point: build + test the repo three times — a default
# RelWithDebInfo build running the full tier-1 suite, a ThreadSanitizer
# build race-checking the concurrency surface (thread pool, parallel
# Mode-B pipelines, feature cache, segmentation service), and an
# AddressSanitizer(+UBSan) build memory-checking the same surface.
#
# Usage:
#   tools/ci.sh                # default + TSAN + ASAN (concurrency tests)
#   CI_TSAN_ALL=1 tools/ci.sh  # run the ENTIRE suite under TSAN (slow)
#   CI_ASAN_ALL=1 tools/ci.sh  # run the ENTIRE suite under ASAN (slow)
#   CI_JOBS=8 tools/ci.sh      # override build/test parallelism
#
# Exit status is non-zero if any build or test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
# Tests exercising the concurrency paths; extend when adding parallel
# features. CI_TSAN_ALL=1 / CI_ASAN_ALL=1 widen to the full suite.
SAN_FILTER="${CI_SAN_FILTER:-test_parallel|test_volume_parallel|test_batch_images|test_serve|test_pipeline|test_session|test_integration}"

echo "=== [1/3] default build + full tier-1 suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/3] ThreadSanitizer build + concurrency suite ==="
cmake -B build-tsan -S . -DZENESIS_SANITIZE=thread \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
if [[ "${CI_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "$SAN_FILTER"
fi

echo "=== [3/3] AddressSanitizer build + concurrency suite ==="
cmake -B build-asan -S . -DZENESIS_SANITIZE=address \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
if [[ "${CI_ASAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
else
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" -R "$SAN_FILTER"
fi

echo "CI OK"
