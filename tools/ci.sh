#!/usr/bin/env bash
# CI entry point: build + test the repo twice — a default RelWithDebInfo
# build running the full tier-1 suite, then a ThreadSanitizer build
# race-checking the concurrency surface (thread pool, parallel Mode-B
# volume pipeline, feature cache).
#
# Usage:
#   tools/ci.sh                # default + TSAN (concurrency tests)
#   CI_TSAN_ALL=1 tools/ci.sh  # run the ENTIRE suite under TSAN (slow)
#   CI_JOBS=8 tools/ci.sh      # override build/test parallelism
#
# Exit status is non-zero if any build or test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${CI_JOBS:-$(nproc)}"
# Tests exercising the new concurrency paths; extend when adding parallel
# features. CI_TSAN_ALL=1 widens to the full suite.
TSAN_FILTER="${CI_TSAN_FILTER:-test_parallel|test_volume_parallel|test_pipeline|test_session|test_integration}"

echo "=== [1/2] default build + full tier-1 suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/2] ThreadSanitizer build + concurrency suite ==="
cmake -B build-tsan -S . -DZENESIS_SANITIZE=thread \
      -DZENESIS_BUILD_BENCH=OFF -DZENESIS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
if [[ "${CI_TSAN_ALL:-0}" == "1" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "$TSAN_FILTER"
fi

echo "CI OK"
