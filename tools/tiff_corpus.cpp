// tiff_corpus — standalone runner for the TIFF fuzz harness and the
// ingestion benchmark.
//
// Three jobs:
//   1. Dump the feature-complete corpus as .tif files (seeds for external
//      fuzzers, or for eyeballing in an image viewer).
//   2. Run the structure-aware mutation fuzzer for an arbitrary budget
//      and print the rejection taxonomy — handy for soak runs far beyond
//      the 7008 mutants the regression test replays, e.g. under ASAN:
//
//   build/tools/tiff_corpus --out out/tiff_corpus --mutants 1000 --seed 7
//
//   3. --bench: measure per-codec ingestion throughput and memory —
//      naive slurp-and-materialize vs the parallel mmap streaming path —
//      and persist the record as out/BENCH_tiff.json (pages_per_sec and
//      rss_peak_bytes per codec, plus the streaming speedup and a
//      flat-RSS check on a volume much larger than one decoded page).
//
// Exits non-zero if any mutant violates the decode-or-TiffError contract
// (fuzz mode) or if the bench record cannot be written (--bench).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tests/tiff_fuzz_harness.hpp"
#include "zenesis/image/image.hpp"
#include "zenesis/io/report.hpp"
#include "zenesis/io/tiff_stream.hpp"

namespace {

struct Args {
  std::string out_dir;            // empty = don't dump
  std::uint64_t seed = 0xC0FFEE;  // matches the regression test default
  std::size_t mutants = 48;       // per corpus entry
  bool bench = false;             // run the ingestion benchmark instead
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = value();
      if (!v) return false;
      args.out_dir = v;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 0);
    } else if (flag == "--mutants") {
      const char* v = value();
      if (!v) return false;
      args.mutants = std::strtoull(v, nullptr, 0);
    } else if (flag == "--bench") {
      args.bench = true;
    } else {
      std::fprintf(stderr,
                   "usage: tiff_corpus [--out DIR] [--seed N] [--mutants N] "
                   "[--bench]\n");
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// --bench: ingestion throughput and memory, persisted as out/BENCH_tiff.json.

/// Reads a field like "VmRSS" or "VmHWM" from /proc/self/status, in
/// bytes. Returns 0 where the file or field is unavailable (non-Linux),
/// in which case the rss fields of the record degrade to zero rather
/// than failing the bench.
std::uint64_t read_proc_status_bytes(const char* field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::string prefix = std::string(field) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    std::istringstream rest(line.substr(prefix.size()));
    std::uint64_t kib = 0;
    rest >> kib;
    return kib * 1024;
  }
  return 0;
}

/// Best-effort reset of the process peak-RSS counter (VmHWM) so a
/// phase's high-water mark is attributable to that phase alone. Writing
/// "5" to /proc/self/clear_refs is the documented reset knob; failure
/// (non-Linux, restricted procfs) just leaves VmHWM process-global.
void reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  clear << "5";
}

/// Smooth synthetic EM-like stack: low-frequency gradients plus a
/// per-slice phase shift. Smooth data is the representative case for
/// LZW/Deflate + horizontal predictor (real FIB-SEM slices compress the
/// same way); pure noise would make every codec look like a pass-through.
zenesis::image::VolumeU16 bench_volume(std::int64_t pages, std::int64_t side) {
  zenesis::image::VolumeU16 vol(side, side, pages);
  for (std::int64_t z = 0; z < pages; ++z) {
    auto px = vol.slice(z).pixels();
    for (std::int64_t y = 0; y < side; ++y) {
      for (std::int64_t x = 0; x < side; ++x) {
        const auto v = static_cast<std::uint16_t>(
            (x * 13 + y * 7 + z * 101 + ((x * y) >> 6)) & 0x0FFF);
        px[static_cast<std::size_t>(y * side + x)] = v;
      }
    }
  }
  return vol;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CodecCase {
  const char* name;
  zenesis::io::TiffCompression compression;
  int predictor;
};

int run_bench() {
  namespace fs = std::filesystem;
  namespace zio = zenesis::io;

  const std::int64_t kPages = 48;
  const std::int64_t kSide = 512;  // 48 x 512 x 512 u16 = 24 MiB decoded
  const auto vol = bench_volume(kPages, kSide);
  const std::uint64_t decoded_bytes =
      static_cast<std::uint64_t>(kPages) * kSide * kSide * 2;

  const fs::path dir = fs::temp_directory_path() / "zen_tiff_bench";
  fs::create_directories(dir);

  const CodecCase cases[] = {
      {"none", zio::TiffCompression::kNone, 1},
      {"packbits", zio::TiffCompression::kPackBits, 1},
      {"lzw", zio::TiffCompression::kLzw, 1},
      {"lzw_pred", zio::TiffCompression::kLzw, 2},
      {"deflate", zio::TiffCompression::kDeflate, 1},
      {"deflate_pred", zio::TiffCompression::kDeflate, 2},
  };

  zio::JsonObject record;
  record.set("bench", std::string("tiff_ingest"));
  record.set("pages", static_cast<std::int64_t>(kPages));
  record.set("side", static_cast<std::int64_t>(kSide));
  record.set("decoded_bytes", static_cast<std::int64_t>(decoded_bytes));
  // Full-decode speedups scale with cores (pages decode in parallel);
  // first-slice speedups do not, so both are recorded alongside the
  // thread count that produced them.
  record.set("threads", static_cast<std::int64_t>(std::max(
                            1u, std::thread::hardware_concurrency())));

  std::vector<zio::JsonObject> codec_records;
  double worst_compressed_speedup = -1.0;
  for (const CodecCase& c : cases) {
    zio::TiffWriteOptions wopt;
    wopt.format = zio::TiffFormat::kBigTiff;
    wopt.layout = zio::TiffLayout::kTiles;
    wopt.tile_width = 128;
    wopt.tile_height = 128;
    wopt.compression = c.compression;
    wopt.predictor = c.predictor;
    const fs::path file = dir / (std::string(c.name) + ".tif");
    zio::write_volume_tiff(file.string(), vol, wopt);
    const std::uint64_t file_bytes = fs::file_size(file);

    constexpr int kReps = 3;  // best-of-3 damps scheduler noise

    // Decompress-whole-file baseline: slurp the file, then decompress and
    // parse every page into a materialized stack on one thread (the
    // pre-redesign ingestion architecture). Its first slice is only
    // available once the WHOLE file has been decoded — that cost is what
    // the streaming comparison below charges it for.
    double naive_best = 0.0;       // pages/sec, full decode
    double naive_total_s = 1e30;   // seconds to decode the whole file
    reset_peak_rss();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      std::ifstream in(file, std::ios::binary);
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      const zio::TiffStack stack = zio::read_tiff_bytes(bytes);
      const double dt = std::max(seconds_since(t0), 1e-9);
      naive_total_s = std::min(naive_total_s, dt);
      naive_best =
          std::max(naive_best, static_cast<double>(stack.pages.size()) / dt);
    }
    const std::uint64_t naive_rss_peak = read_proc_status_bytes("VmHWM");

    // Streaming path, full materialization: zero-copy mmap views, pages
    // decoded in parallel on the global ThreadPool.
    double stream_best = 0.0;
    zio::TiffSourceKind resolved = zio::TiffSourceKind::kAuto;
    reset_peak_rss();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      zio::TiffOpenOptions oopt;
      oopt.source_kind = zio::TiffSourceKind::kMmap;
      const zio::TiffVolumeReader reader =
          zio::TiffVolumeReader::open(file.string(), oopt);
      resolved = reader.source_kind();
      const auto out = reader.read_volume_u16();
      const double pps = static_cast<double>(out.depth()) /
                         std::max(seconds_since(t0), 1e-9);
      stream_best = std::max(stream_best, pps);
    }
    const std::uint64_t stream_rss_peak = read_proc_status_bytes("VmHWM");

    // Streaming path, slice-sequential consumption: open + decode ONE
    // page, which is all Mode-B's temporal propagation needs before the
    // model can start. Effective first-slice throughput is 1/t here vs
    // 1/t_whole_file for the baseline, because the decompress-whole-file
    // architecture cannot hand out page 0 until everything is decoded.
    double first_slice_s = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      zio::TiffOpenOptions oopt;
      oopt.source_kind = zio::TiffSourceKind::kMmap;
      const zio::TiffVolumeReader reader =
          zio::TiffVolumeReader::open(file.string(), oopt);
      const auto img = reader.read_page_u16(0);
      first_slice_s = std::min(first_slice_s, std::max(seconds_since(t0), 1e-9));
    }
    const double naive_first_pps = 1.0 / naive_total_s;
    const double stream_first_pps = 1.0 / first_slice_s;

    const double full_speedup = stream_best / std::max(naive_best, 1e-9);
    const double first_speedup = stream_first_pps / naive_first_pps;
    if (c.compression != zio::TiffCompression::kNone) {
      const double effective = std::max(full_speedup, first_speedup);
      worst_compressed_speedup =
          worst_compressed_speedup < 0.0
              ? effective
              : std::min(worst_compressed_speedup, effective);
    }

    zio::JsonObject cr;
    cr.set("codec", std::string(c.name));
    cr.set("predictor", static_cast<std::int64_t>(c.predictor));
    cr.set("file_bytes", static_cast<std::int64_t>(file_bytes));
    cr.set("naive_pages_per_sec", naive_best);
    cr.set("stream_pages_per_sec", stream_best);
    cr.set("pages_per_sec", stream_best);
    cr.set("speedup_full_decode", full_speedup);
    cr.set("first_slice_naive_pages_per_sec", naive_first_pps);
    cr.set("first_slice_stream_pages_per_sec", stream_first_pps);
    cr.set("speedup_first_slice", first_speedup);
    cr.set("naive_rss_peak_bytes", static_cast<std::int64_t>(naive_rss_peak));
    cr.set("rss_peak_bytes", static_cast<std::int64_t>(stream_rss_peak));
    cr.set("source_kind", std::string(zio::to_string(resolved)));
    codec_records.push_back(std::move(cr));

    std::printf("%-13s file=%8.2f MiB  naive=%7.1f p/s  stream=%7.1f p/s "
                "(%.2fx)  first-slice=%7.1f p/s vs %5.1f p/s (%.1fx)\n",
                c.name, static_cast<double>(file_bytes) / (1 << 20), naive_best,
                stream_best, full_speedup, stream_first_pps, naive_first_pps,
                first_speedup);
  }
  record.set_array("codecs", std::move(codec_records));
  // "Effective throughput on compressed streams": the better of the full
  // parallel decode speedup (scales with cores) and the slice-sequential
  // first-slice speedup (holds on any machine) — min over the
  // compressed codecs, so the record pins the worst case.
  record.set("min_compressed_speedup", worst_compressed_speedup);
  record.set("speedup_definition",
             std::string("max(full_parallel_decode, first_slice) vs "
                         "decompress-whole-file baseline, min over "
                         "compressed codecs"));

  // Flat-RSS probe: stream a volume page-by-page (no materialization) and
  // sample VmRSS inside the loop. The peak delta must stay well below the
  // decoded volume size — that is the "ingest stacks bigger than RAM"
  // claim in one number. Sampling (rather than VmHWM) keeps the probe
  // honest even where /proc/self/clear_refs is restricted. The probe uses
  // the pread source: mmap leaves decoded-from file pages resident (they
  // are reclaimable page cache, but VmRSS counts them anyway), which
  // would make the process LOOK like it holds the file even though the
  // kernel can drop those pages at will; pread keeps the cache unmapped
  // so VmRSS measures exactly what the process allocated.
  {
    const std::int64_t flat_pages = 96;
    const std::int64_t flat_side = 768;  // 96 x 768 x 768 u16 = 108 MiB
    const auto flat_vol = bench_volume(flat_pages, flat_side);
    const std::uint64_t flat_decoded =
        static_cast<std::uint64_t>(flat_pages) * flat_side * flat_side * 2;
    zio::TiffWriteOptions wopt;
    wopt.format = zio::TiffFormat::kBigTiff;
    wopt.layout = zio::TiffLayout::kTiles;
    wopt.tile_width = 128;
    wopt.tile_height = 128;
    wopt.compression = zio::TiffCompression::kDeflate;
    wopt.predictor = 2;
    const fs::path file = dir / "flat_rss.tif";
    zio::write_volume_tiff(file.string(), flat_vol, wopt);

    const std::uint64_t rss_before = read_proc_status_bytes("VmRSS");
    std::uint64_t rss_peak = rss_before;
    std::uint64_t checksum = 0;
    zio::TiffOpenOptions oopt;
    oopt.source_kind = zio::TiffSourceKind::kPread;
    const zio::TiffVolumeReader reader =
        zio::TiffVolumeReader::open(file.string(), oopt);
    for (std::int64_t p = 0; p < reader.pages(); ++p) {
      const auto img = reader.read_page_u16(p);
      checksum += img.at(0, 0) + img.at(flat_side - 1, flat_side - 1);
      rss_peak = std::max(rss_peak, read_proc_status_bytes("VmRSS"));
    }
    const std::uint64_t rss_delta = rss_peak - rss_before;
    const bool flat = rss_delta < flat_decoded / 2;
    record.set("flat_rss_codec", std::string("deflate_pred"));
    record.set("flat_rss_source_kind", std::string("pread"));
    record.set("flat_rss_decoded_bytes", static_cast<std::int64_t>(flat_decoded));
    record.set("flat_rss_file_bytes",
               static_cast<std::int64_t>(fs::file_size(file)));
    record.set("flat_rss_peak_delta_bytes", static_cast<std::int64_t>(rss_delta));
    record.set("flat_rss_is_flat", static_cast<std::int64_t>(flat ? 1 : 0));
    record.set("flat_rss_checksum", static_cast<std::int64_t>(checksum & 0xFFFF));
    std::printf("flat_rss      decoded=%.0f MiB  peak_delta=%.1f MiB  flat=%s\n",
                static_cast<double>(flat_decoded) / (1 << 20),
                static_cast<double>(rss_delta) / (1 << 20), flat ? "yes" : "no");
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories("out");
  const std::string json_path = "out/BENCH_tiff.json";
  record.write(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  if (worst_compressed_speedup < 2.0) {
    std::fprintf(stderr,
                 "WARNING: min compressed-stream speedup %.2fx below the 2x "
                 "target\n",
                 worst_compressed_speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;
  if (args.bench) return run_bench();

  namespace fuzz = zenesis::io::fuzz;
  const auto corpus = fuzz::build_corpus();
  std::printf("corpus: %zu entries\n", corpus.size());

  if (!args.out_dir.empty()) {
    std::filesystem::create_directories(args.out_dir);
    for (const auto& entry : corpus) {
      const auto path =
          std::filesystem::path(args.out_dir) / (entry.name + ".tif");
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(entry.bytes.data()),
                static_cast<std::streamsize>(entry.bytes.size()));
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 2;
      }
    }
    std::printf("wrote corpus to %s\n", args.out_dir.c_str());
  }

  // Same tight limits as tests/test_tiff_fuzz.cpp, so a soak run probes
  // the identical allocation bounds.
  zenesis::io::TiffReadLimits limits;
  limits.max_pages = 64;
  limits.max_pixels_per_page = 1ull << 22;
  limits.max_decoded_bytes = 16ull << 20;
  limits.max_ifd_entries = 64;

  const fuzz::FuzzStats stats = fuzz::run_fuzz(args.seed, args.mutants, limits);
  std::printf("mutants:  %llu\n", static_cast<unsigned long long>(stats.mutants));
  std::printf("decoded:  %llu\n", static_cast<unsigned long long>(stats.decoded));
  std::printf("rejected: %llu\n", static_cast<unsigned long long>(stats.rejected));
  static const char* kKinds[6] = {"BadHeader",         "Truncated",
                                  "CorruptIfd",        "OffsetOutOfBounds",
                                  "LimitExceeded",     "Unsupported"};
  for (int k = 0; k < 6; ++k) {
    std::printf("  %-18s %llu\n", kKinds[k],
                static_cast<unsigned long long>(stats.kind_counts[k]));
  }
  for (const std::string& failure : stats.failures) {
    std::fprintf(stderr, "CONTRACT VIOLATION: %s\n", failure.c_str());
  }
  if (!stats.failures.empty()) return 1;
  std::printf("contract upheld: every mutant decoded or threw TiffError\n");
  return 0;
}
