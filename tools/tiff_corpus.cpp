// tiff_corpus — standalone runner for the TIFF fuzz harness.
//
// Two jobs:
//   1. Dump the feature-complete corpus as .tif files (seeds for external
//      fuzzers, or for eyeballing in an image viewer).
//   2. Run the structure-aware mutation fuzzer for an arbitrary budget
//      and print the rejection taxonomy — handy for soak runs far beyond
//      the 2400 mutants the regression test replays, e.g. under ASAN:
//
//   build/tools/tiff_corpus --out out/tiff_corpus --mutants 1000 --seed 7
//
// Exits non-zero if any mutant violates the decode-or-TiffError contract.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "tests/tiff_fuzz_harness.hpp"

namespace {

struct Args {
  std::string out_dir;            // empty = don't dump
  std::uint64_t seed = 0xC0FFEE;  // matches the regression test default
  std::size_t mutants = 48;       // per corpus entry
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = value();
      if (!v) return false;
      args.out_dir = v;
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 0);
    } else if (flag == "--mutants") {
      const char* v = value();
      if (!v) return false;
      args.mutants = std::strtoull(v, nullptr, 0);
    } else {
      std::fprintf(stderr,
                   "usage: tiff_corpus [--out DIR] [--seed N] [--mutants N]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  namespace fuzz = zenesis::io::fuzz;
  const auto corpus = fuzz::build_corpus();
  std::printf("corpus: %zu entries\n", corpus.size());

  if (!args.out_dir.empty()) {
    std::filesystem::create_directories(args.out_dir);
    for (const auto& entry : corpus) {
      const auto path =
          std::filesystem::path(args.out_dir) / (entry.name + ".tif");
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(entry.bytes.data()),
                static_cast<std::streamsize>(entry.bytes.size()));
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 2;
      }
    }
    std::printf("wrote corpus to %s\n", args.out_dir.c_str());
  }

  // Same tight limits as tests/test_tiff_fuzz.cpp, so a soak run probes
  // the identical allocation bounds.
  zenesis::io::TiffReadLimits limits;
  limits.max_pages = 64;
  limits.max_pixels_per_page = 1ull << 22;
  limits.max_decoded_bytes = 16ull << 20;
  limits.max_ifd_entries = 64;

  const fuzz::FuzzStats stats = fuzz::run_fuzz(args.seed, args.mutants, limits);
  std::printf("mutants:  %llu\n", static_cast<unsigned long long>(stats.mutants));
  std::printf("decoded:  %llu\n", static_cast<unsigned long long>(stats.decoded));
  std::printf("rejected: %llu\n", static_cast<unsigned long long>(stats.rejected));
  static const char* kKinds[6] = {"BadHeader",         "Truncated",
                                  "CorruptIfd",        "OffsetOutOfBounds",
                                  "LimitExceeded",     "Unsupported"};
  for (int k = 0; k < 6; ++k) {
    std::printf("  %-18s %llu\n", kKinds[k],
                static_cast<unsigned long long>(stats.kind_counts[k]));
  }
  for (const std::string& failure : stats.failures) {
    std::fprintf(stderr, "CONTRACT VIOLATION: %s\n", failure.c_str());
  }
  if (!stats.failures.empty()) return 1;
  std::printf("contract upheld: every mutant decoded or threw TiffError\n");
  return 0;
}
