// zen_trace — capture a traced run of the zenesis stack and export it.
//
// Forces tracing on (equivalent to ZENESIS_TRACE=1), drives a synthetic
// workload through the serving layer and/or the Mode-B volume pipeline,
// then exports what the TraceCollector saw:
//
//   zen_trace dump  [--out PATH] [--workload serve|volume|both] [--prompt T]
//       Chrome trace-event JSON (chrome://tracing, Perfetto) + stage table.
//       Default output: zen_trace.json.
//   zen_trace stats [--workload serve|volume|both] [--prompt T]
//       Aggregated per-stage table only, no file written.
//
// The dump stitches each serve request across its submitter, the
// dispatcher and the fan-out workers via the trace_id each span carries
// (also echoed in Response::trace_id), so one slow request can be
// followed thread-to-thread in the viewer.
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/serve/service.hpp"

using namespace zenesis;

#if !defined(ZENESIS_OBS_DISABLED)
namespace {

void run_serve_workload(const std::string& prompt) {
  std::vector<image::AnyImage> slices;
  for (std::uint64_t seed : {61u, 62u, 63u}) {
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kCrystalline;
    cfg.width = 96;
    cfg.height = 96;
    cfg.seed = seed;
    slices.emplace_back(fibsem::generate_slice(cfg, 0).raw);
  }
  serve::ServiceConfig cfg;
  cfg.queue_capacity = 32;
  cfg.max_batch = 6;
  serve::SegmentService service(cfg);
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(service.submit(
        serve::Request::slice(slices[static_cast<std::size_t>(i % 3)], prompt)));
  }
  for (auto& f : futures) (void)f.get();
  service.shutdown();
}

void run_volume_workload(const std::string& prompt) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = 96;
  cfg.height = 96;
  cfg.depth = 4;
  cfg.seed = 17;
  const auto vol = fibsem::generate_volume(cfg);
  const core::ZenesisPipeline pipe;
  (void)pipe.segment_volume(core::VolumeRequest::view(vol.volume, prompt));
}

void print_stage_table() {
  const auto stages = obs::TraceCollector::global().aggregate();
  std::printf("%-24s %8s %12s %12s %12s\n", "stage", "count", "mean_us",
              "min_us", "max_us");
  for (const auto& [name, st] : stages) {
    std::printf("%-24s %8llu %12.1f %12.1f %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(st.count), st.mean_us(),
                st.min_us, st.max_us);
  }
  const auto& collector = obs::TraceCollector::global();
  std::printf("threads seen: %zu; spans dropped by ring window: %llu\n",
              collector.threads_seen(),
              static_cast<unsigned long long>(collector.overwritten()));
}

}  // namespace
#endif  // !ZENESIS_OBS_DISABLED

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: zen_trace <dump|stats> [--out PATH] "
               "[--workload serve|volume|both] [--prompt TEXT]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode != "dump" && mode != "stats") return usage();

  std::string out = "zen_trace.json";
  std::string workload = "both";
  std::string prompt =
      fibsem::default_prompt(fibsem::SampleType::kCrystalline);
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--prompt" && i + 1 < argc) {
      prompt = argv[++i];
    } else {
      return usage();
    }
  }
  if (workload != "serve" && workload != "volume" && workload != "both") {
    return usage();
  }

#if defined(ZENESIS_OBS_DISABLED)
  std::fprintf(stderr,
               "zen_trace: tracing was compiled out (ZENESIS_OBS=OFF); "
               "rebuild with -DZENESIS_OBS=ON\n");
  return 1;
#else
  obs::set_enabled(true);
  obs::TraceCollector::global().clear();

  if (workload == "serve" || workload == "both") run_serve_workload(prompt);
  if (workload == "volume" || workload == "both") run_volume_workload(prompt);

  print_stage_table();
  if (mode == "dump") {
    obs::TraceCollector::global().write_chrome_trace(out);
    std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                out.c_str());
  }
  return 0;
#endif
}
