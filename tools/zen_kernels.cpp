// zen_kernels — inspect and benchmark the tensor kernel backends.
//
//   zen_kernels                 CPU features, available backends, active pick
//   zen_kernels bench [N ...]   per-backend GFLOP/s for matmul / matmul_nt /
//                               linear at the given square sizes
//                               (default 128 256 512)
//
// The same dispatch path the pipeline uses (ZENESIS_KERNEL honored), so
// the printout answers "which backend will my run actually get, and what
// is it worth" on this exact machine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/ops.hpp"

using namespace zenesis;

namespace {

double time_gflops(const char* op, std::int64_t n) {
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 42, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 42, 2);
  tensor::Tensor bias({n});

  const auto run = [&] {
    if (std::string(op) == "matmul") return tensor::matmul(a, b);
    if (std::string(op) == "matmul_nt") return tensor::matmul_nt(a, b);
    return tensor::linear(a, b, bias);
  };
  (void)run();  // warm-up (pool spin-up, page faults)

  const double flops_per_iter = 2.0 * static_cast<double>(n) *
                                static_cast<double>(n) *
                                static_cast<double>(n);
  int iters = 1;
  double elapsed = 0.0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) (void)run();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    if (elapsed >= 0.2 || iters >= 1 << 14) break;
    iters *= 4;
  }
  return flops_per_iter * static_cast<double>(iters) / elapsed / 1e9;
}

int run_bench(const std::vector<std::int64_t>& sizes) {
  const std::string active = tensor::backend_name();
  for (const auto& backend : tensor::available_backends()) {
    if (!tensor::set_backend(backend)) continue;
    std::printf("backend %s\n", backend.c_str());
    for (const std::int64_t n : sizes) {
      std::printf("  %5lld x %-5lld  matmul %7.2f GFLOP/s   matmul_nt %7.2f "
                  "GFLOP/s   linear %7.2f GFLOP/s\n",
                  static_cast<long long>(n), static_cast<long long>(n),
                  time_gflops("matmul", n), time_gflops("matmul_nt", n),
                  time_gflops("linear", n));
    }
  }
  tensor::set_backend(active);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("cpu features:       %s\n", tensor::cpu_feature_string().c_str());
  std::printf("available backends:");
  for (const auto& name : tensor::available_backends()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  const char* env = std::getenv("ZENESIS_KERNEL");
  std::printf("ZENESIS_KERNEL:     %s\n", env != nullptr ? env : "(unset)");
  std::printf("active backend:     %s\n", tensor::backend_name());

  if (argc >= 2 && std::string(argv[1]) == "bench") {
    std::vector<std::int64_t> sizes;
    for (int i = 2; i < argc; ++i) {
      const long long v = std::atoll(argv[i]);
      if (v < 1) {
        std::fprintf(stderr, "zen_kernels: bad size '%s'\n", argv[i]);
        return 2;
      }
      sizes.push_back(v);
    }
    if (sizes.empty()) sizes = {128, 256, 512};
    std::printf("\n");
    return run_bench(sizes);
  }
  if (argc >= 2) {
    std::fprintf(stderr,
                 "usage: zen_kernels            # report CPU/backend info\n"
                 "       zen_kernels bench [N ...]  # per-backend GFLOP/s\n");
    return 2;
  }
  return 0;
}
