// zen_kernels — inspect and benchmark the tensor kernel backends.
//
//   zen_kernels                 CPU features, available backends (with
//                               int8 kernel availability), active pick,
//                               active precision
//   zen_kernels bench [N ...]   per-backend GFLOP/s for matmul / matmul_nt /
//                               linear at the given square sizes, plus int8
//                               GOP/s for the quantized matmul_nt next to its
//                               fp32 counterpart (default 128 256 512)
//
// The same dispatch path the pipeline uses (ZENESIS_KERNEL and
// ZENESIS_PRECISION honored), so the printout answers "which backend and
// precision will my run actually get, and what is it worth" on this
// exact machine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/ops.hpp"
#include "zenesis/tensor/quant.hpp"

using namespace zenesis;

namespace {

/// Times `run` with geometric iteration growth until >= 0.2 s and
/// returns billions of `ops_per_iter` operations per second.
template <typename Fn>
double time_gops(double ops_per_iter, const Fn& run) {
  (void)run();  // warm-up (pool spin-up, page faults, weight panels)
  int iters = 1;
  double elapsed = 0.0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) (void)run();
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    if (elapsed >= 0.2 || iters >= 1 << 14) break;
    iters *= 4;
  }
  return ops_per_iter * static_cast<double>(iters) / elapsed / 1e9;
}

double time_gflops(const char* op, std::int64_t n) {
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 42, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 42, 2);
  tensor::Tensor bias({n});

  const double flops = 2.0 * static_cast<double>(n) *
                       static_cast<double>(n) * static_cast<double>(n);
  return time_gops(flops, [&] {
    if (std::string(op) == "matmul") return tensor::matmul(a, b);
    if (std::string(op) == "matmul_nt") return tensor::matmul_nt(a, b);
    return tensor::linear(a, b, bias);
  });
}

/// Int8 GOP/s of the full dynamic-quantization matmul_nt path
/// (activation quantize + int8 GEMM + requantize) against a
/// pre-quantized weight panel — the shape ops::linear_quantized runs.
double time_gops_int8(std::int64_t n) {
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 42, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 42, 2);
  const tensor::quant::QuantizedTensor qb = tensor::quant::quantize_rows(b);
  const double ops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                     static_cast<double>(n);
  return time_gops(ops, [&] { return tensor::matmul_nt_quantized(a, qb); });
}

int run_bench(const std::vector<std::int64_t>& sizes) {
  const std::string active = tensor::backend_name();
  for (const auto& backend : tensor::available_backends()) {
    if (!tensor::set_backend(backend)) continue;
    const bool int8 = tensor::backend_supports_int8(backend);
    std::printf("backend %s\n", backend.c_str());
    for (const std::int64_t n : sizes) {
      const double fp32_nt = time_gflops("matmul_nt", n);
      std::printf("  %5lld x %-5lld  matmul %7.2f GFLOP/s   matmul_nt %7.2f "
                  "GFLOP/s   linear %7.2f GFLOP/s",
                  static_cast<long long>(n), static_cast<long long>(n),
                  time_gflops("matmul", n), fp32_nt, time_gflops("linear", n));
      if (int8) {
        const double i8 = time_gops_int8(n);
        std::printf("   int8 matmul_nt %7.2f GOP/s (%.2fx fp32)", i8,
                    fp32_nt > 0.0 ? i8 / fp32_nt : 0.0);
      }
      std::printf("\n");
    }
  }
  tensor::set_backend(active);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("cpu features:       %s\n", tensor::cpu_feature_string().c_str());
  std::printf("available backends:");
  for (const auto& name : tensor::available_backends()) {
    std::printf(" %s%s", name.c_str(),
                tensor::backend_supports_int8(name) ? "(+int8)" : "");
  }
  std::printf("\n");
  const char* env = std::getenv("ZENESIS_KERNEL");
  std::printf("ZENESIS_KERNEL:     %s\n", env != nullptr ? env : "(unset)");
  std::printf("active backend:     %s\n", tensor::backend_name());
  const char* penv = std::getenv("ZENESIS_PRECISION");
  std::printf("ZENESIS_PRECISION:  %s\n", penv != nullptr ? penv : "(unset)");
  std::printf("active precision:   %s\n", tensor::quant::precision_name());

  if (argc >= 2 && std::string(argv[1]) == "bench") {
    std::vector<std::int64_t> sizes;
    for (int i = 2; i < argc; ++i) {
      const long long v = std::atoll(argv[i]);
      if (v < 1) {
        std::fprintf(stderr, "zen_kernels: bad size '%s'\n", argv[i]);
        return 2;
      }
      sizes.push_back(v);
    }
    if (sizes.empty()) sizes = {128, 256, 512};
    std::printf("\n");
    return run_bench(sizes);
  }
  if (argc >= 2) {
    std::fprintf(stderr,
                 "usage: zen_kernels            # report CPU/backend info\n"
                 "       zen_kernels bench [N ...]  # per-backend GFLOP/s\n");
    return 2;
  }
  return 0;
}
